package storage

import (
	"container/list"
	"context"
	"sync"
)

// CachingStore fronts a Store (typically a FileStore on a storage node)
// with a byte-budgeted LRU of chunk payloads, so the hot set of contexts
// is served from RAM instead of disk. Admission is read-allocate: Get
// misses populate the cache, while Put writes through and only refreshes
// an entry that is already resident — publishing a context at every level
// must not evict the hot set. Metadata is passed through uncached (it is
// a few KB per context and read once per fetch). Safe for concurrent use.
type CachingStore struct {
	inner    Store
	maxBytes int64

	// The mutex guards the LRU and the counters; Get/Put hold it only
	// around map/list bookkeeping, not around inner I/O, so concurrent
	// misses overlap their disk reads. Two racing misses on one key both
	// read inner and the second insert refreshes the first — wasted work,
	// not incoherence, since the payload under a key never changes between
	// Puts.
	mu      sync.Mutex
	ll      *list.List // front = most recently used
	items   map[ChunkKey]*list.Element
	bytes   int64
	hits    uint64
	misses  uint64
	evicted uint64
}

type cacheEntry struct {
	key  ChunkKey
	data []byte
}

// CacheStats snapshots a CachingStore's counters.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
	Bytes, MaxBytes         int64
}

// Add folds another snapshot into this one, aggregating counters across a
// fleet of RAM tiers (MaxBytes sums too: the aggregate budget).
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Entries += o.Entries
	s.Bytes += o.Bytes
	s.MaxBytes += o.MaxBytes
}

// HitRate returns hits/(hits+misses), 0 when the store is untouched.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewCachingStore wraps inner with a RAM tier of at most maxBytes of
// payload (≤0 disables caching: every Get goes to inner and counts as a
// miss).
func NewCachingStore(inner Store, maxBytes int64) *CachingStore {
	return &CachingStore{
		inner:    inner,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    map[ChunkKey]*list.Element{},
	}
}

// Stats returns the current counters.
func (s *CachingStore) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CacheStats{
		Hits: s.hits, Misses: s.misses, Evictions: s.evicted,
		Entries: s.ll.Len(), Bytes: s.bytes, MaxBytes: s.maxBytes,
	}
}

// lookup returns a copy of the cached payload, promoting the entry.
func (s *CachingStore) lookup(key ChunkKey) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return append([]byte{}, el.Value.(*cacheEntry).data...), true
}

// insert caches a copy of data under key, evicting from the cold end
// until the budget holds. Payloads larger than the whole budget are not
// admitted. When onlyRefresh is set the payload replaces an existing
// entry but never allocates a new one (the Put path).
func (s *CachingStore) insert(key ChunkKey, data []byte, onlyRefresh bool) {
	size := int64(len(data))
	if s.maxBytes <= 0 || size > s.maxBytes {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		s.bytes += size - int64(len(ent.data))
		ent.data = append([]byte{}, data...)
		s.ll.MoveToFront(el)
	} else {
		if onlyRefresh {
			return
		}
		s.items[key] = s.ll.PushFront(&cacheEntry{key: key, data: append([]byte{}, data...)})
		s.bytes += size
	}
	for s.bytes > s.maxBytes {
		el := s.ll.Back()
		if el == nil {
			break
		}
		s.dropLocked(el)
		s.evicted++
	}
}

func (s *CachingStore) dropLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	s.ll.Remove(el)
	delete(s.items, ent.key)
	s.bytes -= int64(len(ent.data))
}

// Get implements Store: RAM tier first, then inner on a miss.
func (s *CachingStore) Get(ctx context.Context, key ChunkKey) ([]byte, error) {
	if data, ok := s.lookup(key); ok {
		return data, nil
	}
	data, err := s.inner.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	s.insert(key, data, false)
	return data, nil
}

// Put implements Store, writing through to inner.
func (s *CachingStore) Put(ctx context.Context, key ChunkKey, data []byte) error {
	if err := s.inner.Put(ctx, key, data); err != nil {
		return err
	}
	s.insert(key, data, true)
	return nil
}

// PutMeta implements Store.
func (s *CachingStore) PutMeta(ctx context.Context, meta ContextMeta) error {
	return s.inner.PutMeta(ctx, meta)
}

// GetMeta implements Store.
func (s *CachingStore) GetMeta(ctx context.Context, contextID string) (ContextMeta, error) {
	return s.inner.GetMeta(ctx, contextID)
}

// DeleteContext implements Store, dropping the context's cached
// payloads. Inner is deleted first: dropping cache entries before the
// (slow, on disk) inner delete would let a concurrent Get repopulate
// the cache from still-present files and serve the context forever.
func (s *CachingStore) DeleteContext(ctx context.Context, contextID string) error {
	err := s.inner.DeleteContext(ctx, contextID)
	s.mu.Lock()
	var next *list.Element
	for el := s.ll.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*cacheEntry).key.ContextID == contextID {
			s.dropLocked(el)
		}
	}
	s.mu.Unlock()
	return err
}

// ListContexts implements Store.
func (s *CachingStore) ListContexts(ctx context.Context) ([]string, error) {
	return s.inner.ListContexts(ctx)
}
