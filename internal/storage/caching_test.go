package storage

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func ckey(ctxID string, chunk int) ChunkKey {
	return ChunkKey{ContextID: ctxID, Chunk: chunk, Level: 0}
}

func TestCachingStoreHitMissEvict(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	// Budget for exactly two 100-byte payloads.
	cs := NewCachingStore(inner, 200)

	payload := func(b byte) []byte {
		p := make([]byte, 100)
		for i := range p {
			p[i] = b
		}
		return p
	}
	for i := 0; i < 3; i++ {
		if err := cs.Put(ctx, ckey("c", i), payload(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Put is write-through but read-allocate: nothing cached yet.
	if st := cs.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("Put populated the cache: %+v", st)
	}

	// First reads miss and populate; repeats hit.
	for i := 0; i < 2; i++ {
		if _, err := cs.Get(ctx, ckey("c", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cs.Get(ctx, ckey("c", 0)); err != nil {
		t.Fatal(err)
	}
	st := cs.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 || st.Bytes != 200 {
		t.Fatalf("after warmup: %+v", st)
	}

	// A third distinct payload evicts the LRU entry (chunk 1: chunk 0 was
	// re-read last).
	if _, err := cs.Get(ctx, ckey("c", 2)); err != nil {
		t.Fatal(err)
	}
	st = cs.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 200 {
		t.Fatalf("after eviction: %+v", st)
	}
	// Chunk 0 must still be resident (a hit), chunk 1 gone (a miss).
	hitsBefore := st.Hits
	if _, err := cs.Get(ctx, ckey("c", 0)); err != nil {
		t.Fatal(err)
	}
	if st = cs.Stats(); st.Hits != hitsBefore+1 {
		t.Errorf("chunk 0 was evicted instead of chunk 1: %+v", st)
	}
	missesBefore := st.Misses
	if _, err := cs.Get(ctx, ckey("c", 1)); err != nil {
		t.Fatal(err)
	}
	if st = cs.Stats(); st.Misses != missesBefore+1 {
		t.Errorf("chunk 1 still resident after eviction: %+v", st)
	}

	if rate := st.HitRate(); rate <= 0 || rate >= 1 {
		t.Errorf("hit rate %.2f out of range", rate)
	}
}

func TestCachingStoreOversizedAndDisabled(t *testing.T) {
	ctx := context.Background()
	cs := NewCachingStore(NewMemStore(), 50)
	big := make([]byte, 100)
	if err := cs.Put(ctx, ckey("c", 0), big); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Get(ctx, ckey("c", 0)); err != nil {
		t.Fatal(err)
	}
	if st := cs.Stats(); st.Entries != 0 {
		t.Errorf("payload above the whole budget was admitted: %+v", st)
	}

	off := NewCachingStore(NewMemStore(), 0)
	if err := off.Put(ctx, ckey("c", 0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := off.Get(ctx, ckey("c", 0)); err != nil {
		t.Fatal(err)
	}
	if st := off.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Errorf("disabled cache cached anyway: %+v", st)
	}
}

func TestCachingStorePutRefreshesResidentEntry(t *testing.T) {
	ctx := context.Background()
	cs := NewCachingStore(NewMemStore(), 1000)
	key := ckey("c", 0)
	if err := cs.Put(ctx, key, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Get(ctx, key); err != nil { // allocate
		t.Fatal(err)
	}
	if err := cs.Put(ctx, key, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	got, err := cs.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "newer" {
		t.Errorf("stale cache entry after Put: %q", got)
	}
	if st := cs.Stats(); st.Bytes != int64(len("newer")) {
		t.Errorf("byte accounting after refresh: %+v", st)
	}
}

func TestCachingStoreDeleteContextInvalidates(t *testing.T) {
	ctx := context.Background()
	cs := NewCachingStore(NewMemStore(), 1000)
	meta := ContextMeta{
		ContextID: "c", Model: "m", TokenCount: 4, ChunkTokens: []int{4},
		Levels: 1, SizesBytes: [][]int64{{1}},
	}
	if err := cs.PutMeta(ctx, meta); err != nil {
		t.Fatal(err)
	}
	if err := cs.Put(ctx, ckey("c", 0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Get(ctx, ckey("c", 0)); err != nil {
		t.Fatal(err)
	}
	if err := cs.DeleteContext(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	if st := cs.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("cache retains deleted context: %+v", st)
	}
	if _, err := cs.Get(ctx, ckey("c", 0)); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted chunk still served: %v", err)
	}
}

// TestCachingStoreConcurrentStress hammers one store from many
// goroutines (run under -race in CI): correctness of returned payloads
// and of the byte accounting under heavy Put/Get/evict churn.
func TestCachingStoreConcurrentStress(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	cs := NewCachingStore(inner, 4<<10) // small budget: constant eviction

	const (
		workers = 8
		keys    = 64
		rounds  = 300
	)
	// Payload content is derived from the key, so any cross-key mixup is
	// detectable no matter which worker wrote last.
	expect := func(k int) []byte {
		p := make([]byte, 128)
		for i := range p {
			p[i] = byte(k)
		}
		return p
	}
	for k := 0; k < keys; k++ {
		if err := cs.Put(ctx, ckey("stress", k), expect(k)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				k := rng.Intn(keys)
				if rng.Intn(4) == 0 {
					if err := cs.Put(ctx, ckey("stress", k), expect(k)); err != nil {
						errCh <- err
						return
					}
					continue
				}
				got, err := cs.Get(ctx, ckey("stress", k))
				if err != nil {
					errCh <- err
					return
				}
				for i, b := range got {
					if b != byte(k) {
						errCh <- fmt.Errorf("key %d byte %d is %d", k, i, b)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	st := cs.Stats()
	if st.Bytes > st.MaxBytes {
		t.Errorf("cache over budget after churn: %+v", st)
	}
	if st.Hits+st.Misses == 0 {
		t.Error("stress recorded no reads")
	}
	// Recount the resident bytes against the accounting.
	var total int64
	for k := 0; k < keys; k++ {
		if data, ok := cs.lookup(ckey("stress", k)); ok {
			total += int64(len(data))
		}
	}
	if total != st.Bytes {
		t.Errorf("resident payloads sum to %d, accounting says %d", total, st.Bytes)
	}
}
