package storage

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// chash derives a distinct valid content hash per test key and, via
// cpayload, a payload that actually hashes to it.
func cpayload(k int, size int) []byte {
	p := make([]byte, size)
	seed := []byte(fmt.Sprintf("payload-%d", k))
	copy(p, seed)
	return p
}

func chash(k int, size int) string { return HashChunk(cpayload(k, size)) }

func TestCachingStoreHitMissEvict(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	// Budget for exactly two 100-byte payloads.
	cs := NewCachingStore(inner, 200)

	for i := 0; i < 3; i++ {
		if err := cs.PutChunk(ctx, chash(i, 100), cpayload(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// PutChunk is write-through but read-allocate: nothing cached yet.
	if st := cs.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("PutChunk populated the cache: %+v", st)
	}

	// First reads miss and populate; repeats hit.
	for i := 0; i < 2; i++ {
		if _, err := cs.GetChunk(ctx, chash(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cs.GetChunk(ctx, chash(0, 100)); err != nil {
		t.Fatal(err)
	}
	st := cs.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 || st.Bytes != 200 {
		t.Fatalf("after warmup: %+v", st)
	}

	// A third distinct payload evicts the LRU entry (chunk 1: chunk 0 was
	// re-read last).
	if _, err := cs.GetChunk(ctx, chash(2, 100)); err != nil {
		t.Fatal(err)
	}
	st = cs.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 200 {
		t.Fatalf("after eviction: %+v", st)
	}
	// Chunk 0 must still be resident (a hit), chunk 1 gone (a miss).
	hitsBefore := st.Hits
	if _, err := cs.GetChunk(ctx, chash(0, 100)); err != nil {
		t.Fatal(err)
	}
	if st = cs.Stats(); st.Hits != hitsBefore+1 {
		t.Errorf("chunk 0 was evicted instead of chunk 1: %+v", st)
	}
	missesBefore := st.Misses
	if _, err := cs.GetChunk(ctx, chash(1, 100)); err != nil {
		t.Fatal(err)
	}
	if st = cs.Stats(); st.Misses != missesBefore+1 {
		t.Errorf("chunk 1 still resident after eviction: %+v", st)
	}

	if rate := st.HitRate(); rate <= 0 || rate >= 1 {
		t.Errorf("hit rate %.2f out of range", rate)
	}
}

func TestCachingStoreOversizedAndDisabled(t *testing.T) {
	ctx := context.Background()
	cs := NewCachingStore(NewMemStore(), 50)
	if err := cs.PutChunk(ctx, chash(0, 100), cpayload(0, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.GetChunk(ctx, chash(0, 100)); err != nil {
		t.Fatal(err)
	}
	if st := cs.Stats(); st.Entries != 0 {
		t.Errorf("payload above the whole budget was admitted: %+v", st)
	}

	off := NewCachingStore(NewMemStore(), 0)
	if err := off.PutChunk(ctx, chash(1, 8), cpayload(1, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := off.GetChunk(ctx, chash(1, 8)); err != nil {
		t.Fatal(err)
	}
	if st := off.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Errorf("disabled cache cached anyway: %+v", st)
	}
}

func TestCachingStoreSweepInvalidates(t *testing.T) {
	ctx := context.Background()
	cs := NewCachingStore(NewMemStore(), 1000)
	hash := chash(0, 64)
	if err := cs.PutChunk(ctx, hash, cpayload(0, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.GetChunk(ctx, hash); err != nil { // allocate in RAM
		t.Fatal(err)
	}
	// The payload is unreferenced: a sweep through the caching tier must
	// reclaim it below AND drop the RAM copy, so the tier cannot serve
	// bytes the backing store no longer holds.
	res, err := cs.Sweep(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedChunks != 1 {
		t.Fatalf("sweep = %+v", res)
	}
	if st := cs.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("cache retains swept payload: %+v", st)
	}
	if _, err := cs.GetChunk(ctx, hash); !errors.Is(err, ErrNotFound) {
		t.Errorf("swept chunk still served: %v", err)
	}
}

func TestCachingStoreDeleteContextKeepsSharedPayloads(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	cs := NewCachingStore(inner, 1<<20)
	a := testManifest(t, cs, "cache/a")
	if err := cs.PutManifest(ctx, a); err != nil {
		t.Fatal(err)
	}
	b := testManifest(t, cs, "cache/b")
	b.Hashes[0][0] = a.Hashes[0][0] // share one payload
	if err := cs.PutManifest(ctx, b); err != nil {
		t.Fatal(err)
	}
	shared := a.Hashes[0][0]
	if _, err := cs.GetChunk(ctx, shared); err != nil { // warm the RAM tier
		t.Fatal(err)
	}
	if err := cs.DeleteContext(ctx, "cache/a"); err != nil {
		t.Fatal(err)
	}
	// Deletion must NOT invalidate the shared payload: B still references
	// it, and only Sweep reclaims bytes.
	if _, err := cs.GetChunk(ctx, shared); err != nil {
		t.Errorf("shared payload lost on delete: %v", err)
	}
	if _, err := cs.Sweep(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.GetChunk(ctx, shared); err != nil {
		t.Errorf("shared payload swept while referenced: %v", err)
	}
}

// TestCachingStoreConcurrentStress hammers one store from many
// goroutines (run under -race in CI): correctness of returned payloads
// and of the byte accounting under heavy put/get/evict churn.
func TestCachingStoreConcurrentStress(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	cs := NewCachingStore(inner, 4<<10) // small budget: constant eviction

	const (
		workers = 8
		keys    = 64
		rounds  = 300
	)
	// Payload content is derived from the key, so any cross-key mixup is
	// detectable no matter which worker wrote last.
	hashes := make([]string, keys)
	for k := 0; k < keys; k++ {
		hashes[k] = chash(k, 128)
		if err := cs.PutChunk(ctx, hashes[k], cpayload(k, 128)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				k := rng.Intn(keys)
				if rng.Intn(4) == 0 {
					if err := cs.PutChunk(ctx, hashes[k], cpayload(k, 128)); err != nil {
						errCh <- err
						return
					}
					continue
				}
				got, err := cs.GetChunk(ctx, hashes[k])
				if err != nil {
					errCh <- err
					return
				}
				if HashChunk(got) != hashes[k] {
					errCh <- fmt.Errorf("key %d served foreign payload", k)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	st := cs.Stats()
	if st.Bytes > st.MaxBytes {
		t.Errorf("cache over budget after churn: %+v", st)
	}
	if st.Hits+st.Misses == 0 {
		t.Error("stress recorded no reads")
	}
	// Recount the resident bytes against the accounting.
	var total int64
	for k := 0; k < keys; k++ {
		if data, ok := cs.lookup(hashes[k]); ok {
			total += int64(len(data))
		}
	}
	if total != st.Bytes {
		t.Errorf("resident payloads sum to %d, accounting says %d", total, st.Bytes)
	}
}
