package storage

import (
	"context"
	"encoding/base32"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FileStore is a filesystem-backed Store:
//
//	root/chunks/ab/<hash>.bin   content-addressed payloads (fan-out by
//	                            the hash's first byte)
//	root/manifests/<id>.json    per-context manifests (name-encoded id)
//	root/fp/ab/<key>.json       dedup-index entries
//
// Payload refcounts are not persisted: they are derived by scanning the
// manifests at open, which makes them crash-safe — a refcount file could
// be stale after a crash, a manifest either landed (its rename is atomic)
// or did not. Chunk GC ages come from file mtimes; TouchChunk freshens
// them.
type FileStore struct {
	root string

	mu      sync.RWMutex
	refs    map[string]int
	corrupt map[string]error // manifests that failed to decode at open
}

// NewFileStore creates (if needed) and opens a store rooted at dir. It
// reaps leftover .tmp files from interrupted writes and derives payload
// refcounts from the manifests on disk; a corrupt (truncated, garbled)
// manifest is recorded and surfaces as ErrCorruptManifest from
// GetManifest for that context only — other contexts stay readable.
func NewFileStore(dir string) (*FileStore, error) {
	s := &FileStore{root: dir, refs: map[string]int{}, corrupt: map[string]error{}}
	for _, sub := range []string{s.chunksDir(), s.manifestsDir(), s.fpDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("storage: creating %s: %w", sub, err)
		}
	}
	if err := s.reapTemp(); err != nil {
		return nil, err
	}
	if err := s.loadRefs(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *FileStore) chunksDir() string    { return filepath.Join(s.root, "chunks") }
func (s *FileStore) manifestsDir() string { return filepath.Join(s.root, "manifests") }
func (s *FileStore) fpDir() string        { return filepath.Join(s.root, "fp") }

var pathEnc = base32.StdEncoding.WithPadding(base32.NoPadding)

func encodeID(id string) string { return pathEnc.EncodeToString([]byte(id)) }
func decodeID(name string) (string, error) {
	raw, err := pathEnc.DecodeString(strings.ToUpper(name))
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

func (s *FileStore) chunkPath(hash string) string {
	return filepath.Join(s.chunksDir(), hash[:2], hash+".bin")
}

func (s *FileStore) manifestPath(id string) string {
	return filepath.Join(s.manifestsDir(), encodeID(id)+".json")
}

func (s *FileStore) fpPath(key string) string {
	fan := key
	if len(fan) > 2 {
		fan = fan[:2]
	}
	return filepath.Join(s.fpDir(), fan, key+".json")
}

// reapTemp removes .tmp leftovers of writes interrupted mid-flight. They
// are unreferenced by construction (the rename never happened), so
// deleting them can orphan nothing.
func (s *FileStore) reapTemp() error {
	return filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return fmt.Errorf("storage: scanning %s: %w", path, err)
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".tmp") {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("storage: reaping %s: %w", path, err)
			}
		}
		return nil
	})
}

// loadRefs derives payload refcounts from the manifests on disk.
func (s *FileStore) loadRefs() error {
	entries, err := os.ReadDir(s.manifestsDir())
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		id, err := decodeID(strings.TrimSuffix(e.Name(), ".json"))
		if err != nil {
			continue // foreign file; ignore
		}
		m, err := s.readManifest(id)
		if err != nil {
			s.corrupt[id] = err
			continue
		}
		for _, h := range m.AllHashes() {
			s.refs[h]++
		}
	}
	return nil
}

// writeAtomic writes data to path via a .tmp sibling and rename.
func writeAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// PutChunk implements Store.
func (s *FileStore) PutChunk(_ context.Context, hash string, data []byte) error {
	if err := validateHash(hash); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.chunkPath(hash)
	if _, err := os.Stat(path); err == nil {
		now := time.Now()
		return os.Chtimes(path, now, now)
	}
	return writeAtomic(path, data)
}

// GetChunk implements Store.
func (s *FileStore) GetChunk(_ context.Context, hash string) ([]byte, error) {
	if err := validateHash(hash); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := os.ReadFile(s.chunkPath(hash))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: chunk %s", ErrNotFound, hash)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return data, nil
}

// TouchChunk implements Store.
func (s *FileStore) TouchChunk(_ context.Context, hash string) (bool, error) {
	if err := validateHash(hash); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.chunkPath(hash)
	now := time.Now()
	switch err := os.Chtimes(path, now, now); {
	case err == nil:
		return true, nil
	case errors.Is(err, os.ErrNotExist):
		return false, nil
	default:
		return false, fmt.Errorf("storage: %w", err)
	}
}

func (s *FileStore) readManifest(id string) (Manifest, error) {
	data, err := os.ReadFile(s.manifestPath(id))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: context %q: %v", ErrCorruptManifest, id, err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, fmt.Errorf("%w: context %q: %v", ErrCorruptManifest, id, err)
	}
	return m, nil
}

// PutManifest implements Store.
func (s *FileStore) PutManifest(_ context.Context, m Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := m.Meta.ContextID
	var oldHashes []string
	if _, corrupt := s.corrupt[id]; !corrupt {
		if old, err := s.readManifest(id); err == nil {
			oldHashes = old.AllHashes()
		}
	}
	if err := writeAtomic(s.manifestPath(id), data); err != nil {
		return err
	}
	// The replacement landed: whatever was wrong with the old copy is gone.
	delete(s.corrupt, id)
	for _, h := range oldHashes {
		s.refs[h]--
		if s.refs[h] <= 0 {
			delete(s.refs, h)
		}
	}
	for _, h := range m.AllHashes() {
		s.refs[h]++
	}
	return nil
}

// GetManifest implements Store.
func (s *FileStore) GetManifest(_ context.Context, contextID string) (Manifest, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, err := s.readManifest(contextID)
	if errors.Is(err, os.ErrNotExist) {
		return Manifest{}, fmt.Errorf("%w: context %q", ErrNotFound, contextID)
	}
	if err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// DeleteContext implements Store. Deleting a context whose manifest is
// corrupt is allowed — it is how an operator clears the breakage — and
// decrements nothing, since the corrupt copy contributed no refcounts.
func (s *FileStore) DeleteContext(_ context.Context, contextID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, corrupt := s.corrupt[contextID]; corrupt {
		if err := os.Remove(s.manifestPath(contextID)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("storage: %w", err)
		}
		delete(s.corrupt, contextID)
		return nil
	}
	m, err := s.readManifest(contextID)
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: context %q", ErrNotFound, contextID)
	}
	if err != nil {
		return err
	}
	if err := os.Remove(s.manifestPath(contextID)); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	for _, h := range m.AllHashes() {
		s.refs[h]--
		if s.refs[h] <= 0 {
			delete(s.refs, h)
		}
	}
	return nil
}

// ListContexts implements Store. Corrupt manifests are still listed:
// they exist, they just cannot be read.
func (s *FileStore) ListContexts(_ context.Context) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(s.manifestsDir())
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		id, err := decodeID(strings.TrimSuffix(e.Name(), ".json"))
		if err != nil {
			continue // foreign file; ignore
		}
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// PutFingerprint implements Store.
func (s *FileStore) PutFingerprint(_ context.Context, key string, fp Fingerprint) error {
	if err := validateFingerprintKey(key); err != nil {
		return err
	}
	if err := validateHash(fp.Hash); err != nil {
		return err
	}
	data, err := json.Marshal(fp)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeAtomic(s.fpPath(key), data)
}

// GetFingerprint implements Store.
func (s *FileStore) GetFingerprint(_ context.Context, key string) (Fingerprint, error) {
	if err := validateFingerprintKey(key); err != nil {
		return Fingerprint{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := os.ReadFile(s.fpPath(key))
	if errors.Is(err, os.ErrNotExist) {
		return Fingerprint{}, fmt.Errorf("%w: fingerprint %s", ErrNotFound, key)
	}
	if err != nil {
		return Fingerprint{}, fmt.Errorf("storage: %w", err)
	}
	var fp Fingerprint
	if err := json.Unmarshal(data, &fp); err != nil {
		// A garbled index entry is advisory state: treat it as absent so
		// the publisher re-encodes, and let Sweep reap the file.
		return Fingerprint{}, fmt.Errorf("%w: fingerprint %s (corrupt)", ErrNotFound, key)
	}
	return fp, nil
}

// Sweep implements Store. It refuses to reclaim anything while a corrupt
// manifest is present: its references are unknown, so deleting
// unreferenced-looking chunks could tear a context that is merely
// unreadable, not deleted. DeleteContext the corrupt ids first.
//
// The disk walks run under the read lock (concurrent Gets proceed);
// each candidate is then re-verified and removed under a brief write
// lock, so a publish that gained a reference — or freshened the GC age —
// mid-walk wins the race.
func (s *FileStore) Sweep(_ context.Context, minAge time.Duration) (SweepResult, error) {
	now := time.Now()
	var res SweepResult
	var candidates []string
	s.mu.RLock()
	if len(s.corrupt) > 0 {
		ids := make([]string, 0, len(s.corrupt))
		for id := range s.corrupt {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
		sort.Strings(ids)
		return SweepResult{}, fmt.Errorf("storage: refusing to sweep with corrupt manifests present: %v", ids)
	}
	err := filepath.WalkDir(s.chunksDir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".bin") {
			return err
		}
		hash := strings.TrimSuffix(d.Name(), ".bin")
		if validateHash(hash) != nil {
			return nil // foreign file; ignore
		}
		res.ScannedChunks++
		if s.refs[hash] == 0 {
			candidates = append(candidates, hash)
		}
		return nil
	})
	s.mu.RUnlock()
	if err != nil {
		return res, fmt.Errorf("storage: sweeping chunks: %w", err)
	}
	for _, hash := range candidates {
		s.mu.Lock()
		if s.refs[hash] > 0 {
			s.mu.Unlock()
			continue
		}
		path := s.chunkPath(hash)
		info, statErr := os.Stat(path)
		if statErr != nil || now.Sub(info.ModTime()) < minAge {
			s.mu.Unlock()
			if statErr != nil && !errors.Is(statErr, os.ErrNotExist) {
				return res, fmt.Errorf("storage: sweeping chunks: %w", statErr)
			}
			continue
		}
		if err := os.Remove(path); err != nil {
			s.mu.Unlock()
			return res, fmt.Errorf("storage: sweeping chunks: %w", err)
		}
		s.mu.Unlock()
		res.RemovedChunks++
		res.ReclaimedBytes += info.Size()
		res.RemovedHashes = append(res.RemovedHashes, hash)
	}
	err = filepath.WalkDir(s.fpDir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".json") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var fp Fingerprint
		alive := false
		if json.Unmarshal(data, &fp) == nil && validateHash(fp.Hash) == nil {
			_, statErr := os.Stat(s.chunkPath(fp.Hash))
			alive = statErr == nil
		}
		if alive {
			return nil
		}
		if err := os.Remove(path); err != nil {
			return err
		}
		res.PrunedFingerprints++
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("storage: sweeping fingerprints: %w", err)
	}
	sort.Strings(res.RemovedHashes)
	return res, nil
}

// Usage implements Store.
func (s *FileStore) Usage(_ context.Context) (Usage, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var u Usage
	err := filepath.WalkDir(s.chunksDir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".bin") {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		u.Chunks++
		u.ChunkBytes += info.Size()
		return nil
	})
	if err != nil {
		return Usage{}, fmt.Errorf("storage: %w", err)
	}
	entries, err := os.ReadDir(s.manifestsDir())
	if err != nil {
		return Usage{}, fmt.Errorf("storage: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			u.Manifests++
		}
	}
	return u, nil
}
