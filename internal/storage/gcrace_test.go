package storage

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFileStoreSweepVsConcurrentPublish: an aggressive sweeper running
// against a slow disk must never reclaim a payload a concurrent publish
// is about to reference. Publishes follow the streamer's commit order —
// chunks first, manifest last — with TouchChunk freshening dedup'd
// payloads, so the window where a payload exists unreferenced is as
// wide as the disk is slow; the GC grace age is what keeps those
// in-flight payloads safe. Run with -race for the full effect.
func TestFileStoreSweepVsConcurrentPublish(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewLatencyStore(fs)
	// The slow-disk fault: every chunk write stalls, stretching the
	// chunks-written-manifest-pending window across many sweeps.
	s.SetLatency(500*time.Microsecond, 500*time.Microsecond)
	ctx := context.Background()

	const grace = 250 * time.Millisecond
	var sweeps atomic.Int64
	done := make(chan struct{})
	var sweeperWG sync.WaitGroup
	sweeperWG.Add(1)
	go func() {
		defer sweeperWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := s.Sweep(ctx, grace); err != nil {
				t.Errorf("concurrent sweep: %v", err)
				return
			}
			sweeps.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	// Every context shares one payload (the dedup'd corpus prefix) and
	// writes its own unique ones, across several concurrent publishers.
	shared := []byte("race|shared-prefix")
	sharedHash := HashChunk(shared)
	const publishers, perPublisher = 4, 5
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				id := fmt.Sprintf("race/%d-%d", p, i)
				m := Manifest{Meta: testMeta(id), Hashes: map[int][]string{}}
				for _, lv := range []int{0, 1, TextLevel} {
					row := make([]string, m.Meta.NumChunks())
					for c := range row {
						if lv == 0 && c == 0 {
							// The dedup path: freshen instead of rewriting.
							ok, err := s.TouchChunk(ctx, sharedHash)
							if err != nil {
								t.Errorf("%s: TouchChunk: %v", id, err)
								return
							}
							if !ok {
								if err := s.PutChunk(ctx, sharedHash, shared); err != nil {
									t.Errorf("%s: PutChunk shared: %v", id, err)
									return
								}
							}
							row[c] = sharedHash
							continue
						}
						payload := []byte(fmt.Sprintf("%s|%d|%d", id, lv, c))
						h := HashChunk(payload)
						if err := s.PutChunk(ctx, h, payload); err != nil {
							t.Errorf("%s: PutChunk: %v", id, err)
							return
						}
						row[c] = h
					}
					m.Hashes[lv] = row
				}
				if err := s.PutManifest(ctx, m); err != nil {
					t.Errorf("%s: PutManifest: %v", id, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(done)
	sweeperWG.Wait()
	if sweeps.Load() == 0 {
		t.Fatal("sweeper never ran while publishes were in flight")
	}

	// The invariant: every published manifest's payloads are intact —
	// shared prefix included — no matter how the sweeps interleaved.
	ids, err := s.ListContexts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != publishers*perPublisher {
		t.Fatalf("%d contexts survived, want %d", len(ids), publishers*perPublisher)
	}
	for _, id := range ids {
		m, err := s.GetManifest(ctx, id)
		if err != nil {
			t.Fatalf("manifest %s: %v", id, err)
		}
		for lv, row := range m.Hashes {
			for c, h := range row {
				if _, err := s.GetChunk(ctx, h); err != nil {
					t.Errorf("%s (lv %d, c %d): published payload reclaimed: %v", id, lv, c, err)
				}
			}
		}
	}
	t.Logf("%d sweeps raced %d publishes", sweeps.Load(), publishers*perPublisher)
}
