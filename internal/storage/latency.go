package storage

import (
	"context"
	"sync"
	"time"
)

// LatencyStore wraps a Store and delays every operation by a
// configurable read/write latency — the chaos subsystem's "slow disk"
// fault. The delays can be changed while the store is in use (injecting
// the fault mid-run and healing it later), and every delay is
// context-aware so a cancelled request does not sit out the full
// penalty. A zero-latency LatencyStore is a transparent passthrough,
// which is why production node wiring can keep it permanently in place
// and chaos injection needs no test-only forks.
type LatencyStore struct {
	inner Store

	mu    sync.RWMutex
	read  time.Duration
	write time.Duration
}

// NewLatencyStore wraps inner with zero added latency.
func NewLatencyStore(inner Store) *LatencyStore {
	return &LatencyStore{inner: inner}
}

// SetLatency changes the per-operation delays: read applies to lookups
// (GetChunk, GetManifest, ListContexts, GetFingerprint, TouchChunk,
// Usage), write to mutations (PutChunk, PutManifest, DeleteContext,
// PutFingerprint, Sweep). Zero or negative heals that class.
func (l *LatencyStore) SetLatency(read, write time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.read, l.write = read, write
}

// Latency reports the current read and write delays.
func (l *LatencyStore) Latency() (read, write time.Duration) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.read, l.write
}

// Inner returns the wrapped store.
func (l *LatencyStore) Inner() Store { return l.inner }

func (l *LatencyStore) delay(ctx context.Context, write bool) error {
	l.mu.RLock()
	d := l.read
	if write {
		d = l.write
	}
	l.mu.RUnlock()
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (l *LatencyStore) PutChunk(ctx context.Context, hash string, data []byte) error {
	if err := l.delay(ctx, true); err != nil {
		return err
	}
	return l.inner.PutChunk(ctx, hash, data)
}

func (l *LatencyStore) GetChunk(ctx context.Context, hash string) ([]byte, error) {
	if err := l.delay(ctx, false); err != nil {
		return nil, err
	}
	return l.inner.GetChunk(ctx, hash)
}

func (l *LatencyStore) TouchChunk(ctx context.Context, hash string) (bool, error) {
	if err := l.delay(ctx, false); err != nil {
		return false, err
	}
	return l.inner.TouchChunk(ctx, hash)
}

func (l *LatencyStore) PutManifest(ctx context.Context, m Manifest) error {
	if err := l.delay(ctx, true); err != nil {
		return err
	}
	return l.inner.PutManifest(ctx, m)
}

func (l *LatencyStore) GetManifest(ctx context.Context, contextID string) (Manifest, error) {
	if err := l.delay(ctx, false); err != nil {
		return Manifest{}, err
	}
	return l.inner.GetManifest(ctx, contextID)
}

func (l *LatencyStore) DeleteContext(ctx context.Context, contextID string) error {
	if err := l.delay(ctx, true); err != nil {
		return err
	}
	return l.inner.DeleteContext(ctx, contextID)
}

func (l *LatencyStore) ListContexts(ctx context.Context) ([]string, error) {
	if err := l.delay(ctx, false); err != nil {
		return nil, err
	}
	return l.inner.ListContexts(ctx)
}

func (l *LatencyStore) PutFingerprint(ctx context.Context, key string, fp Fingerprint) error {
	if err := l.delay(ctx, true); err != nil {
		return err
	}
	return l.inner.PutFingerprint(ctx, key, fp)
}

func (l *LatencyStore) GetFingerprint(ctx context.Context, key string) (Fingerprint, error) {
	if err := l.delay(ctx, false); err != nil {
		return Fingerprint{}, err
	}
	return l.inner.GetFingerprint(ctx, key)
}

func (l *LatencyStore) Sweep(ctx context.Context, minAge time.Duration) (SweepResult, error) {
	if err := l.delay(ctx, true); err != nil {
		return SweepResult{}, err
	}
	return l.inner.Sweep(ctx, minAge)
}

func (l *LatencyStore) Usage(ctx context.Context) (Usage, error) {
	if err := l.delay(ctx, false); err != nil {
		return Usage{}, err
	}
	return l.inner.Usage(ctx)
}

var _ Store = (*LatencyStore)(nil)
