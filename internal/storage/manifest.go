package storage

import (
	"fmt"
)

// Manifest is the per-context reference layer of the content-addressed
// store: it carries the ContextMeta the streamer adapts over plus, for
// every stored level (real encoding levels, TextLevel, and refinement
// pseudo-levels), the ordered content hashes of the context's chunk
// payloads. Publishing a context writes payloads once and a manifest
// referencing them; contexts sharing payloads share hashes.
type Manifest struct {
	Meta ContextMeta `json:"meta"`
	// Hashes maps a stored level to per-chunk payload hashes. JSON object
	// keys are the decimal level (encoding/json renders int keys as
	// strings), so -1 is the text pseudo-level and 1000+t a refinement.
	Hashes map[int][]string `json:"hashes"`
	// ChainDigests[i] is the running digest of the context's token stream
	// through the end of chunk i (chained SHA-256, see streamer). Append
	// resumes the chain from the last clean chunk without replaying the
	// whole history, and the publisher's dedup fingerprints derive from
	// these digests.
	ChainDigests []string `json:"chain_digests,omitempty"`
}

// levelRows returns every level the manifest must carry for its meta:
// all real levels, the text pseudo-level when text payloads are stored,
// and one refinement pseudo-level per target.
func (m Manifest) levelRows() []int {
	rows := make([]int, 0, m.Meta.Levels+1+len(m.Meta.RefineTargets))
	for lv := 0; lv < m.Meta.Levels; lv++ {
		rows = append(rows, lv)
	}
	if len(m.Meta.TextBytes) > 0 {
		rows = append(rows, TextLevel)
	}
	for _, t := range m.Meta.RefineTargets {
		rows = append(rows, RefineLevelKey(t))
	}
	return rows
}

// Validate checks the manifest against its meta: one well-formed hash per
// chunk at every stored level.
func (m Manifest) Validate() error {
	if err := m.Meta.Validate(); err != nil {
		return err
	}
	n := m.Meta.NumChunks()
	for _, lv := range m.levelRows() {
		row, ok := m.Hashes[lv]
		if !ok {
			return fmt.Errorf("storage: manifest %q missing hashes for level %d", m.Meta.ContextID, lv)
		}
		if len(row) != n {
			return fmt.Errorf("storage: manifest %q level %d has %d hashes for %d chunks",
				m.Meta.ContextID, lv, len(row), n)
		}
		for c, h := range row {
			if err := validateHash(h); err != nil {
				return fmt.Errorf("storage: manifest %q level %d chunk %d: %w", m.Meta.ContextID, lv, c, err)
			}
		}
	}
	if len(m.ChainDigests) != 0 && len(m.ChainDigests) != n {
		return fmt.Errorf("storage: manifest %q has %d chain digests for %d chunks",
			m.Meta.ContextID, len(m.ChainDigests), n)
	}
	return nil
}

// ChunkHash returns the content hash of one chunk payload at a stored
// level (TextLevel or RefineLevelKey(t) for the pseudo-levels).
func (m Manifest) ChunkHash(level, chunk int) (string, error) {
	row, ok := m.Hashes[level]
	if !ok {
		return "", fmt.Errorf("storage: context %q stores no level %d", m.Meta.ContextID, level)
	}
	if chunk < 0 || chunk >= len(row) {
		return "", fmt.Errorf("storage: context %q chunk %d outside [0,%d)", m.Meta.ContextID, chunk, len(row))
	}
	return row[chunk], nil
}

// AllHashes returns every payload reference in the manifest, with
// multiplicity — the unit of refcounting.
func (m Manifest) AllHashes() []string {
	var out []string
	for _, row := range m.Hashes {
		out = append(out, row...)
	}
	return out
}

// clone deep-copies the manifest so callers cannot alias store state.
func (m Manifest) clone() Manifest {
	cp := m
	cp.Hashes = make(map[int][]string, len(m.Hashes))
	for lv, row := range m.Hashes {
		cp.Hashes[lv] = append([]string{}, row...)
	}
	cp.ChainDigests = append([]string{}, m.ChainDigests...)
	if len(cp.ChainDigests) == 0 {
		cp.ChainDigests = nil
	}
	// Meta's slices are read-only by convention; copy the rows that
	// Append extends in place.
	cp.Meta.ChunkTokens = append([]int{}, m.Meta.ChunkTokens...)
	cp.Meta.SizesBytes = copyRows(m.Meta.SizesBytes)
	cp.Meta.TextBytes = append([]int64{}, m.Meta.TextBytes...)
	cp.Meta.RefineTargets = append([]int{}, m.Meta.RefineTargets...)
	cp.Meta.RefineBytes = copyRows(m.Meta.RefineBytes)
	if len(cp.Meta.TextBytes) == 0 {
		cp.Meta.TextBytes = nil
	}
	if len(cp.Meta.RefineTargets) == 0 {
		cp.Meta.RefineTargets = nil
		cp.Meta.RefineBytes = nil
	}
	return cp
}

func copyRows(rows [][]int64) [][]int64 {
	if rows == nil {
		return nil
	}
	out := make([][]int64, len(rows))
	for i, row := range rows {
		out[i] = append([]int64{}, row...)
	}
	return out
}
