package storage

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Crash-recovery coverage for FileStore: interrupted writes leave .tmp
// files, crashes mid-write leave truncated or garbled manifests. Opening
// the store must reap the temp files, corrupt manifests must surface
// clean errors for their own context only, and the GC must refuse to
// reclaim while a manifest's references are unknowable.

func openWithContext(t *testing.T, dir, id string) (*FileStore, Manifest) {
	t.Helper()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest(t, s, id)
	if err := s.PutManifest(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	return s, m
}

func TestFileStoreReapsTempFilesOnOpen(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s1, m := openWithContext(t, dir, "recov/tmp")

	// Simulate writes that died before their rename: stray .tmp files in
	// every subtree, including one shadowing a live chunk.
	liveHash := m.Hashes[0][0]
	strays := []string{
		s1.chunkPath(liveHash) + ".tmp",
		filepath.Join(dir, "chunks", "zz", "deadbeef.bin.tmp"),
		filepath.Join(dir, "manifests", "SOMECTX.json.tmp"),
		filepath.Join(dir, "fp", "ab", "abcd.json.tmp"),
	}
	for _, p := range strays {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte("partial write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatalf("open with .tmp leftovers: %v", err)
	}
	for _, p := range strays {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("stray %s survived open", p)
		}
	}
	// The shadowed live chunk is untouched.
	if _, err := s2.GetChunk(ctx, liveHash); err != nil {
		t.Errorf("live chunk lost while reaping: %v", err)
	}
	// Tmp leftovers contribute nothing to usage or listings.
	u, err := s2.Usage(ctx)
	if err != nil || u.Manifests != 1 {
		t.Errorf("usage after reap = %+v, %v", u, err)
	}
}

func corruptManifestFile(t *testing.T, s *FileStore, id string, mutate func([]byte) []byte) {
	t.Helper()
	path := s.manifestPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreCorruptManifestSurfacesCleanly(t *testing.T) {
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/3] },
		"garbled":   func(b []byte) []byte { return []byte(strings.Repeat("\x00garbage", 20)) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			ctx := context.Background()
			s1, _ := openWithContext(t, dir, "recov/bad")
			good := testManifest(t, s1, "recov/good")
			if err := s1.PutManifest(ctx, good); err != nil {
				t.Fatal(err)
			}
			corruptManifestFile(t, s1, "recov/bad", mutate)

			s2, err := NewFileStore(dir)
			if err != nil {
				t.Fatalf("open with corrupt manifest: %v", err)
			}
			// The corrupt context errors cleanly...
			if _, err := s2.GetManifest(ctx, "recov/bad"); !errors.Is(err, ErrCorruptManifest) {
				t.Errorf("GetManifest(corrupt) = %v, want ErrCorruptManifest", err)
			}
			// ...and does not poison other contexts' reads.
			gm, err := s2.GetManifest(ctx, "recov/good")
			if err != nil {
				t.Fatalf("healthy context poisoned: %v", err)
			}
			for _, lv := range []int{0, 1, TextLevel} {
				for c := 0; c < gm.Meta.NumChunks(); c++ {
					h, _ := gm.ChunkHash(lv, c)
					if _, err := s2.GetChunk(ctx, h); err != nil {
						t.Errorf("healthy chunk (lv %d, c %d): %v", lv, c, err)
					}
				}
			}
			// GC refuses while references are unknowable.
			if _, err := s2.Sweep(ctx, 0); err == nil {
				t.Error("sweep ran with a corrupt manifest present")
			}
			// Deleting the corrupt context clears the breakage; a sweep then
			// reclaims its now-unreferenced payloads (their refs were never
			// derived from the unreadable manifest).
			if err := s2.DeleteContext(ctx, "recov/bad"); err != nil {
				t.Fatalf("deleting corrupt context: %v", err)
			}
			res, err := s2.Sweep(ctx, 0)
			if err != nil {
				t.Fatalf("sweep after clearing corruption: %v", err)
			}
			if res.RemovedChunks != 9 { // 3 chunks × (2 levels + text)
				t.Errorf("sweep reclaimed %d chunks, want 9", res.RemovedChunks)
			}
			if _, err := s2.GetManifest(ctx, "recov/good"); err != nil {
				t.Errorf("healthy context lost after recovery: %v", err)
			}
		})
	}
}

func TestFileStoreCorruptManifestReplacedByPut(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s1, m := openWithContext(t, dir, "recov/replace")
	corruptManifestFile(t, s1, "recov/replace", func(b []byte) []byte { return b[:10] })

	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.GetManifest(ctx, "recov/replace"); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("expected corruption, got %v", err)
	}
	// Re-publishing the context heals it in place.
	if err := s2.PutManifest(ctx, m); err != nil {
		t.Fatalf("republish over corrupt manifest: %v", err)
	}
	if _, err := s2.GetManifest(ctx, "recov/replace"); err != nil {
		t.Errorf("healed manifest unreadable: %v", err)
	}
	if _, err := s2.Sweep(ctx, 0); err != nil {
		t.Errorf("sweep after heal: %v", err)
	}
}

func TestFileStoreCorruptFingerprintIsAdvisory(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s, _ := openWithContext(t, dir, "recov/fp")
	payload := []byte("fp payload")
	hash := HashChunk(payload)
	if err := s.PutChunk(ctx, hash, payload); err != nil {
		t.Fatal(err)
	}
	if err := s.PutFingerprint(ctx, "cafe01", Fingerprint{Hash: hash, Bytes: int64(len(payload))}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.fpPath("cafe01"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A garbled index entry reads as absent (the publisher just
	// re-encodes); it must not fail the lookup path.
	if _, err := s.GetFingerprint(ctx, "cafe01"); !errors.Is(err, ErrNotFound) {
		t.Errorf("corrupt fingerprint = %v, want ErrNotFound", err)
	}
}
