// Package storage implements the KV cache store of §6 as a
// content-addressed chunk store: every chunk payload — one encoding level
// of one context chunk, its token text (the recompute fallback), or a
// refinement stream — is keyed by the SHA-256 of its bitstream, and a
// per-context manifest maps contextID → ordered chunk hashes per level
// plus the ContextMeta the streamer adapts over. Identical payloads
// published under different contexts (shared document prefixes, re-used
// conversation history) are stored once; manifests hold references.
//
// Garbage collection is reference-counted: PutManifest and DeleteContext
// adjust per-payload refcounts, and Sweep reclaims payloads no manifest
// references any more. A grace age protects chunks uploaded by an
// in-flight publish whose manifest has not landed yet; TouchChunk
// freshens a reused payload's age for the same reason.
//
// Two backends are provided: an in-memory store (inference-server cache,
// tests) and a filesystem store (the "dedicated storage server" of §3).
// Both are safe for concurrent use.
package storage

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// TextLevel is the pseudo-level under which a chunk's token text is
// stored, for the streamer's recompute fallback (§5.3).
const TextLevel = -1

// ContextMeta describes one stored context: its chunk layout and the
// payload sizes per level, which is what the streamer's adaptation logic
// reads to estimate per-configuration transfer delays (§5.3) and what the
// storage-cost accounting of Fig 14d sums.
type ContextMeta struct {
	ContextID   string    `json:"context_id"`
	Model       string    `json:"model"`
	TokenCount  int       `json:"token_count"`
	ChunkTokens []int     `json:"chunk_tokens"`         // tokens per chunk
	Levels      int       `json:"levels"`               // number of encoding levels
	SizesBytes  [][]int64 `json:"sizes_bytes"`          // [level][chunk] payload sizes
	TextBytes   []int64   `json:"text_bytes,omitempty"` // per-chunk text payload sizes
	// Format is the chunk container format version the publisher wrote
	// (core.FormatV1/FormatV2). Advisory: every payload self-describes
	// via its magic bytes and decoders dispatch on those, so a manifest
	// may even name chunks of mixed vintage. 0 means a pre-format-field
	// publisher, i.e. v1.
	Format int `json:"format,omitempty"`

	// Incremental-streaming extension (DESIGN.md §5b): refinement streams
	// upgrading the coarsest level to RefineTargets[i], stored under
	// RefineLevelKey(target). RefineBytes[i][chunk] are their sizes.
	RefineTargets []int     `json:"refine_targets,omitempty"`
	RefineBytes   [][]int64 `json:"refine_bytes,omitempty"`
}

// RefineLevelKey returns the pseudo-level under which the refinement
// stream targeting encoding level `to` is stored.
func RefineLevelKey(to int) int { return refineKeyBase + to }

// refineKeyBase keeps refinement pseudo-levels clear of real levels.
const refineKeyBase = 1000

// NumChunks returns the number of chunks in the context.
func (m ContextMeta) NumChunks() int { return len(m.ChunkTokens) }

// Validate checks internal consistency.
func (m ContextMeta) Validate() error {
	if m.ContextID == "" {
		return errors.New("storage: meta has empty context id")
	}
	if m.Levels <= 0 || len(m.SizesBytes) != m.Levels {
		return fmt.Errorf("storage: meta has %d levels but %d size rows", m.Levels, len(m.SizesBytes))
	}
	total := 0
	for _, n := range m.ChunkTokens {
		if n <= 0 {
			return fmt.Errorf("storage: meta has non-positive chunk length %d", n)
		}
		total += n
	}
	if total != m.TokenCount {
		return fmt.Errorf("storage: chunk tokens sum to %d, meta says %d", total, m.TokenCount)
	}
	for lv, row := range m.SizesBytes {
		if len(row) != m.NumChunks() {
			return fmt.Errorf("storage: level %d has %d sizes for %d chunks", lv, len(row), m.NumChunks())
		}
	}
	if len(m.TextBytes) != 0 && len(m.TextBytes) != m.NumChunks() {
		return fmt.Errorf("storage: %d text sizes for %d chunks", len(m.TextBytes), m.NumChunks())
	}
	if len(m.RefineBytes) != len(m.RefineTargets) {
		return fmt.Errorf("storage: %d refinement size rows for %d targets", len(m.RefineBytes), len(m.RefineTargets))
	}
	for i, row := range m.RefineBytes {
		if len(row) != m.NumChunks() {
			return fmt.Errorf("storage: refinement target %d has %d sizes for %d chunks", i, len(row), m.NumChunks())
		}
		if m.RefineTargets[i] < 0 || m.RefineTargets[i] >= m.Levels {
			return fmt.Errorf("storage: refinement target %d outside levels [0,%d)", m.RefineTargets[i], m.Levels)
		}
	}
	return nil
}

// TotalBytes returns the total logical footprint of the context across all
// encoded versions and the text copies (Fig 14d) — what a store without
// cross-context dedup would hold for it.
func (m ContextMeta) TotalBytes() int64 {
	var total int64
	for _, row := range m.SizesBytes {
		for _, n := range row {
			total += n
		}
	}
	for _, n := range m.TextBytes {
		total += n
	}
	for _, row := range m.RefineBytes {
		for _, n := range row {
			total += n
		}
	}
	return total
}

// ErrNotFound is returned when a context, chunk or fingerprint is absent.
var ErrNotFound = errors.New("storage: not found")

// ErrCorruptManifest is returned when a stored manifest fails to decode
// (truncated or corrupted on disk). Other contexts stay readable.
var ErrCorruptManifest = errors.New("storage: corrupt manifest")

// HashChunk returns the content address of a chunk payload: the lowercase
// hex SHA-256 of its bytes.
func HashChunk(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// hashLen is the length of a hex SHA-256.
const hashLen = 2 * sha256.Size

func validateHash(hash string) error {
	if len(hash) != hashLen {
		return fmt.Errorf("storage: chunk hash %q is not a hex SHA-256", hash)
	}
	for _, c := range hash {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("storage: chunk hash %q is not lowercase hex", hash)
		}
	}
	return nil
}

// validateFingerprintKey accepts the hex digests the publisher derives
// from chunk identities; the bound keeps keys path-safe for FileStore.
func validateFingerprintKey(key string) error {
	if key == "" || len(key) > 128 {
		return fmt.Errorf("storage: invalid fingerprint key %q", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("storage: fingerprint key %q is not lowercase hex", key)
		}
	}
	return nil
}

// Fingerprint is one entry of the publish-side dedup index: the bitstream
// hash (and raw size) a previously encoded chunk identity produced.
// Looking it up lets Publish skip re-encoding a chunk whose inputs it has
// seen before; the entry is advisory — the publisher verifies the payload
// still exists (TouchChunk) before trusting it.
type Fingerprint struct {
	Hash  string `json:"hash"`
	Bytes int64  `json:"bytes"`
}

// SweepResult accounts one garbage-collection sweep.
type SweepResult struct {
	// ScannedChunks is the number of stored payloads examined.
	ScannedChunks int `json:"scanned_chunks"`
	// RemovedChunks / ReclaimedBytes are the unreferenced payloads deleted.
	RemovedChunks  int   `json:"removed_chunks"`
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
	// RemovedHashes lists the deleted payloads' hashes so RAM tiers
	// layered above the swept store can invalidate them.
	RemovedHashes []string `json:"removed_hashes,omitempty"`
	// PrunedFingerprints is the number of dedup-index entries dropped
	// because their payload is gone.
	PrunedFingerprints int `json:"pruned_fingerprints"`
}

// Add folds another sweep into this one (fleet aggregation).
func (r *SweepResult) Add(o SweepResult) {
	r.ScannedChunks += o.ScannedChunks
	r.RemovedChunks += o.RemovedChunks
	r.ReclaimedBytes += o.ReclaimedBytes
	r.RemovedHashes = append(r.RemovedHashes, o.RemovedHashes...)
	r.PrunedFingerprints += o.PrunedFingerprints
}

// Usage snapshots a store's physical footprint. Because payloads are
// deduplicated, ChunkBytes counts each unique payload once — the number
// that scales with unique content rather than request count.
type Usage struct {
	Manifests  int   `json:"manifests"`
	Chunks     int   `json:"chunks"`
	ChunkBytes int64 `json:"chunk_bytes"`
}

// Add folds another snapshot into this one (fleet aggregation; replicas
// count as real bytes).
func (u *Usage) Add(o Usage) {
	u.Manifests += o.Manifests
	u.Chunks += o.Chunks
	u.ChunkBytes += o.ChunkBytes
}

// Store is the content-addressed chunk registry interface shared by
// backends. The paper's store_kv/get_kv map onto PutManifest+PutChunk /
// GetManifest+GetChunk.
type Store interface {
	// PutChunk stores one payload under its content hash. Writing an
	// existing hash is an idempotent no-op (and freshens its GC age).
	PutChunk(ctx context.Context, hash string, data []byte) error
	// GetChunk retrieves one payload by content hash.
	GetChunk(ctx context.Context, hash string) ([]byte, error)
	// TouchChunk reports whether the payload exists and, if so, freshens
	// its GC age so an in-flight publish reusing it is safe from a
	// concurrent sweep until its manifest lands.
	TouchChunk(ctx context.Context, hash string) (bool, error)

	// PutManifest stores a context's manifest, replacing any existing one
	// and adjusting payload refcounts accordingly.
	PutManifest(ctx context.Context, m Manifest) error
	// GetManifest retrieves a context's manifest.
	GetManifest(ctx context.Context, contextID string) (Manifest, error)
	// DeleteContext drops a context's manifest and decrements the
	// refcounts of every payload it referenced. Payload bytes are
	// reclaimed later, by Sweep.
	DeleteContext(ctx context.Context, contextID string) error
	// ListContexts returns the stored context ids, sorted.
	ListContexts(ctx context.Context) ([]string, error)

	// PutFingerprint records one dedup-index entry; GetFingerprint looks
	// one up (ErrNotFound when absent).
	PutFingerprint(ctx context.Context, key string, fp Fingerprint) error
	GetFingerprint(ctx context.Context, key string) (Fingerprint, error)

	// Sweep reclaims payloads referenced by no manifest whose GC age is at
	// least minAge, and prunes dedup-index entries pointing at reclaimed
	// payloads. The grace age protects chunks written or touched by a
	// publish whose manifest has not landed yet.
	Sweep(ctx context.Context, minAge time.Duration) (SweepResult, error)
	// Usage reports the store's physical footprint.
	Usage(ctx context.Context) (Usage, error)
}

// MemStore is an in-memory Store.
type MemStore struct {
	mu        sync.RWMutex
	chunks    map[string][]byte
	touched   map[string]time.Time
	refs      map[string]int
	manifests map[string]Manifest
	fps       map[string]Fingerprint
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		chunks:    map[string][]byte{},
		touched:   map[string]time.Time{},
		refs:      map[string]int{},
		manifests: map[string]Manifest{},
		fps:       map[string]Fingerprint{},
	}
}

// PutChunk implements Store.
func (s *MemStore) PutChunk(_ context.Context, hash string, data []byte) error {
	if err := validateHash(hash); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.chunks[hash]; !ok {
		s.chunks[hash] = append([]byte{}, data...)
	}
	s.touched[hash] = time.Now()
	return nil
}

// GetChunk implements Store.
func (s *MemStore) GetChunk(_ context.Context, hash string) ([]byte, error) {
	if err := validateHash(hash); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.chunks[hash]
	if !ok {
		return nil, fmt.Errorf("%w: chunk %s", ErrNotFound, hash)
	}
	return append([]byte{}, data...), nil
}

// TouchChunk implements Store.
func (s *MemStore) TouchChunk(_ context.Context, hash string) (bool, error) {
	if err := validateHash(hash); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.chunks[hash]; !ok {
		return false, nil
	}
	s.touched[hash] = time.Now()
	return true, nil
}

// PutManifest implements Store.
func (s *MemStore) PutManifest(_ context.Context, m Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.manifests[m.Meta.ContextID]; ok {
		for _, h := range old.AllHashes() {
			s.refs[h]--
			if s.refs[h] <= 0 {
				delete(s.refs, h)
			}
		}
	}
	for _, h := range m.AllHashes() {
		s.refs[h]++
	}
	s.manifests[m.Meta.ContextID] = m.clone()
	return nil
}

// GetManifest implements Store.
func (s *MemStore) GetManifest(_ context.Context, contextID string) (Manifest, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.manifests[contextID]
	if !ok {
		return Manifest{}, fmt.Errorf("%w: context %q", ErrNotFound, contextID)
	}
	return m.clone(), nil
}

// DeleteContext implements Store.
func (s *MemStore) DeleteContext(_ context.Context, contextID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.manifests[contextID]
	if !ok {
		return fmt.Errorf("%w: context %q", ErrNotFound, contextID)
	}
	for _, h := range m.AllHashes() {
		s.refs[h]--
		if s.refs[h] <= 0 {
			delete(s.refs, h)
		}
	}
	delete(s.manifests, contextID)
	return nil
}

// ListContexts implements Store.
func (s *MemStore) ListContexts(_ context.Context) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.manifests))
	for id := range s.manifests {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// PutFingerprint implements Store.
func (s *MemStore) PutFingerprint(_ context.Context, key string, fp Fingerprint) error {
	if err := validateFingerprintKey(key); err != nil {
		return err
	}
	if err := validateHash(fp.Hash); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fps[key] = fp
	return nil
}

// GetFingerprint implements Store.
func (s *MemStore) GetFingerprint(_ context.Context, key string) (Fingerprint, error) {
	if err := validateFingerprintKey(key); err != nil {
		return Fingerprint{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	fp, ok := s.fps[key]
	if !ok {
		return Fingerprint{}, fmt.Errorf("%w: fingerprint %s", ErrNotFound, key)
	}
	return fp, nil
}

// Sweep implements Store.
func (s *MemStore) Sweep(_ context.Context, minAge time.Duration) (SweepResult, error) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var res SweepResult
	for hash, data := range s.chunks {
		res.ScannedChunks++
		if s.refs[hash] > 0 {
			continue
		}
		if now.Sub(s.touched[hash]) < minAge {
			continue
		}
		res.RemovedChunks++
		res.ReclaimedBytes += int64(len(data))
		res.RemovedHashes = append(res.RemovedHashes, hash)
		delete(s.chunks, hash)
		delete(s.touched, hash)
	}
	for key, fp := range s.fps {
		if _, ok := s.chunks[fp.Hash]; !ok {
			delete(s.fps, key)
			res.PrunedFingerprints++
		}
	}
	sort.Strings(res.RemovedHashes)
	return res, nil
}

// Usage implements Store.
func (s *MemStore) Usage(_ context.Context) (Usage, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u := Usage{Manifests: len(s.manifests), Chunks: len(s.chunks)}
	for _, data := range s.chunks {
		u.ChunkBytes += int64(len(data))
	}
	return u, nil
}
