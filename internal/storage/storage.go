// Package storage implements the KV cache store of §6: the component that
// holds, per context, the encoded bitstreams of every chunk at every
// encoding level (plus the token text for the recompute fallback), keyed
// by chunk id. The paper's store_kv/get_kv interfaces map onto Put/Get
// here; the streaming server (internal/transport) serves Get requests and
// the streamer issues them chunk by chunk.
//
// Two backends are provided: an in-memory store (inference-server cache,
// tests) and a filesystem store (the "dedicated storage server" of §3).
// Both are safe for concurrent use.
package storage

import (
	"context"
	"encoding/base32"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// TextLevel is the pseudo-level under which a chunk's token text is
// stored, for the streamer's recompute fallback (§5.3).
const TextLevel = -1

// ChunkKey identifies one stored payload: a chunk of a context at an
// encoding level (or TextLevel for the raw tokens).
type ChunkKey struct {
	ContextID string
	Chunk     int
	Level     int
}

func (k ChunkKey) validate() error {
	if k.ContextID == "" {
		return errors.New("storage: empty context id")
	}
	if k.Chunk < 0 {
		return fmt.Errorf("storage: negative chunk index %d", k.Chunk)
	}
	if k.Level < TextLevel {
		return fmt.Errorf("storage: invalid level %d", k.Level)
	}
	return nil
}

// ContextMeta describes one stored context: its chunk layout and the
// payload sizes per level, which is what the streamer's adaptation logic
// reads to estimate per-configuration transfer delays (§5.3) and what the
// storage-cost accounting of Fig 14d sums.
type ContextMeta struct {
	ContextID   string    `json:"context_id"`
	Model       string    `json:"model"`
	TokenCount  int       `json:"token_count"`
	ChunkTokens []int     `json:"chunk_tokens"`         // tokens per chunk
	Levels      int       `json:"levels"`               // number of encoding levels
	SizesBytes  [][]int64 `json:"sizes_bytes"`          // [level][chunk] payload sizes
	TextBytes   []int64   `json:"text_bytes,omitempty"` // per-chunk text payload sizes

	// Incremental-streaming extension (DESIGN.md §5b): refinement streams
	// upgrading the coarsest level to RefineTargets[i], stored under
	// RefineLevelKey(target). RefineBytes[i][chunk] are their sizes.
	RefineTargets []int     `json:"refine_targets,omitempty"`
	RefineBytes   [][]int64 `json:"refine_bytes,omitempty"`
}

// RefineLevelKey returns the pseudo-level under which the refinement
// stream targeting encoding level `to` is stored.
func RefineLevelKey(to int) int { return refineKeyBase + to }

// refineKeyBase keeps refinement pseudo-levels clear of real levels.
const refineKeyBase = 1000

// NumChunks returns the number of chunks in the context.
func (m ContextMeta) NumChunks() int { return len(m.ChunkTokens) }

// Validate checks internal consistency.
func (m ContextMeta) Validate() error {
	if m.ContextID == "" {
		return errors.New("storage: meta has empty context id")
	}
	if m.Levels <= 0 || len(m.SizesBytes) != m.Levels {
		return fmt.Errorf("storage: meta has %d levels but %d size rows", m.Levels, len(m.SizesBytes))
	}
	total := 0
	for _, n := range m.ChunkTokens {
		if n <= 0 {
			return fmt.Errorf("storage: meta has non-positive chunk length %d", n)
		}
		total += n
	}
	if total != m.TokenCount {
		return fmt.Errorf("storage: chunk tokens sum to %d, meta says %d", total, m.TokenCount)
	}
	for lv, row := range m.SizesBytes {
		if len(row) != m.NumChunks() {
			return fmt.Errorf("storage: level %d has %d sizes for %d chunks", lv, len(row), m.NumChunks())
		}
	}
	if len(m.TextBytes) != 0 && len(m.TextBytes) != m.NumChunks() {
		return fmt.Errorf("storage: %d text sizes for %d chunks", len(m.TextBytes), m.NumChunks())
	}
	if len(m.RefineBytes) != len(m.RefineTargets) {
		return fmt.Errorf("storage: %d refinement size rows for %d targets", len(m.RefineBytes), len(m.RefineTargets))
	}
	for i, row := range m.RefineBytes {
		if len(row) != m.NumChunks() {
			return fmt.Errorf("storage: refinement target %d has %d sizes for %d chunks", i, len(row), m.NumChunks())
		}
		if m.RefineTargets[i] < 0 || m.RefineTargets[i] >= m.Levels {
			return fmt.Errorf("storage: refinement target %d outside levels [0,%d)", m.RefineTargets[i], m.Levels)
		}
	}
	return nil
}

// TotalBytes returns the total storage footprint of the context across all
// encoded versions and the text copies (Fig 14d).
func (m ContextMeta) TotalBytes() int64 {
	var total int64
	for _, row := range m.SizesBytes {
		for _, n := range row {
			total += n
		}
	}
	for _, n := range m.TextBytes {
		total += n
	}
	for _, row := range m.RefineBytes {
		for _, n := range row {
			total += n
		}
	}
	return total
}

// ErrNotFound is returned when a context or chunk is absent.
var ErrNotFound = errors.New("storage: not found")

// Store is the chunk registry interface shared by backends.
type Store interface {
	// Put stores one chunk payload.
	Put(ctx context.Context, key ChunkKey, data []byte) error
	// Get retrieves one chunk payload (the paper's get_kv).
	Get(ctx context.Context, key ChunkKey) ([]byte, error)
	// PutMeta stores a context's metadata, replacing any existing.
	PutMeta(ctx context.Context, meta ContextMeta) error
	// GetMeta retrieves a context's metadata.
	GetMeta(ctx context.Context, contextID string) (ContextMeta, error)
	// DeleteContext removes a context's metadata and all payloads.
	DeleteContext(ctx context.Context, contextID string) error
	// ListContexts returns the stored context ids, sorted.
	ListContexts(ctx context.Context) ([]string, error)
}

// MemStore is an in-memory Store.
type MemStore struct {
	mu     sync.RWMutex
	chunks map[ChunkKey][]byte
	metas  map[string]ContextMeta
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{chunks: map[ChunkKey][]byte{}, metas: map[string]ContextMeta{}}
}

// Put implements Store.
func (s *MemStore) Put(_ context.Context, key ChunkKey, data []byte) error {
	if err := key.validate(); err != nil {
		return err
	}
	cp := append([]byte{}, data...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chunks[key] = cp
	return nil
}

// Get implements Store.
func (s *MemStore) Get(_ context.Context, key ChunkKey) ([]byte, error) {
	if err := key.validate(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.chunks[key]
	if !ok {
		return nil, fmt.Errorf("%w: chunk %+v", ErrNotFound, key)
	}
	return append([]byte{}, data...), nil
}

// PutMeta implements Store.
func (s *MemStore) PutMeta(_ context.Context, meta ContextMeta) error {
	if err := meta.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metas[meta.ContextID] = meta
	return nil
}

// GetMeta implements Store.
func (s *MemStore) GetMeta(_ context.Context, contextID string) (ContextMeta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	meta, ok := s.metas[contextID]
	if !ok {
		return ContextMeta{}, fmt.Errorf("%w: context %q", ErrNotFound, contextID)
	}
	return meta, nil
}

// DeleteContext implements Store.
func (s *MemStore) DeleteContext(_ context.Context, contextID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.metas[contextID]; !ok {
		return fmt.Errorf("%w: context %q", ErrNotFound, contextID)
	}
	delete(s.metas, contextID)
	for k := range s.chunks {
		if k.ContextID == contextID {
			delete(s.chunks, k)
		}
	}
	return nil
}

// ListContexts implements Store.
func (s *MemStore) ListContexts(_ context.Context) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.metas))
	for id := range s.metas {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// FileStore is a filesystem-backed Store: one directory per context
// (name-encoded), holding meta.json and one file per (level, chunk).
type FileStore struct {
	root string
	mu   sync.RWMutex
}

// NewFileStore creates (if needed) and opens a store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating root: %w", err)
	}
	return &FileStore{root: dir}, nil
}

var pathEnc = base32.StdEncoding.WithPadding(base32.NoPadding)

func encodeID(id string) string { return pathEnc.EncodeToString([]byte(id)) }
func decodeID(name string) (string, error) {
	raw, err := pathEnc.DecodeString(strings.ToUpper(name))
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

func (s *FileStore) contextDir(id string) string { return filepath.Join(s.root, encodeID(id)) }

func (s *FileStore) chunkPath(key ChunkKey) string {
	level := fmt.Sprintf("L%d", key.Level)
	if key.Level == TextLevel {
		level = "text"
	}
	return filepath.Join(s.contextDir(key.ContextID), fmt.Sprintf("%s-%06d.bin", level, key.Chunk))
}

// Put implements Store.
func (s *FileStore) Put(_ context.Context, key ChunkKey, data []byte) error {
	if err := key.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.contextDir(key.ContextID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	tmp := s.chunkPath(key) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return os.Rename(tmp, s.chunkPath(key))
}

// Get implements Store.
func (s *FileStore) Get(_ context.Context, key ChunkKey) ([]byte, error) {
	if err := key.validate(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := os.ReadFile(s.chunkPath(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: chunk %+v", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return data, nil
}

// PutMeta implements Store.
func (s *FileStore) PutMeta(_ context.Context, meta ContextMeta) error {
	if err := meta.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.contextDir(meta.ContextID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	tmp := filepath.Join(dir, "meta.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return os.Rename(tmp, filepath.Join(dir, "meta.json"))
}

// GetMeta implements Store.
func (s *FileStore) GetMeta(_ context.Context, contextID string) (ContextMeta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := os.ReadFile(filepath.Join(s.contextDir(contextID), "meta.json"))
	if errors.Is(err, os.ErrNotExist) {
		return ContextMeta{}, fmt.Errorf("%w: context %q", ErrNotFound, contextID)
	}
	if err != nil {
		return ContextMeta{}, fmt.Errorf("storage: %w", err)
	}
	var meta ContextMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return ContextMeta{}, fmt.Errorf("storage: corrupt meta for %q: %w", contextID, err)
	}
	return meta, nil
}

// DeleteContext implements Store.
func (s *FileStore) DeleteContext(_ context.Context, contextID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.contextDir(contextID)
	if _, err := os.Stat(dir); errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: context %q", ErrNotFound, contextID)
	}
	return os.RemoveAll(dir)
}

// ListContexts implements Store.
func (s *FileStore) ListContexts(_ context.Context) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id, err := decodeID(e.Name())
		if err != nil {
			continue // foreign directory; ignore
		}
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}
