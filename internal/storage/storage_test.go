package storage

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

func testMeta(id string) ContextMeta {
	return ContextMeta{
		ContextID:   id,
		Model:       "test",
		TokenCount:  250,
		ChunkTokens: []int{100, 100, 50},
		Levels:      2,
		SizesBytes:  [][]int64{{10, 10, 5}, {6, 6, 3}},
		TextBytes:   []int64{400, 400, 200},
	}
}

// storeTest exercises a Store implementation through its full lifecycle.
func storeTest(t *testing.T, s Store) {
	t.Helper()
	ctx := context.Background()

	// Missing things are ErrNotFound.
	if _, err := s.Get(ctx, ChunkKey{"nope", 0, 0}); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing: %v", err)
	}
	if _, err := s.GetMeta(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetMeta missing: %v", err)
	}
	if err := s.DeleteContext(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("DeleteContext missing: %v", err)
	}

	// Put/Get round trip, including the text pseudo-level.
	payload := []byte{1, 2, 3, 4, 5}
	keys := []ChunkKey{
		{"ctx/a with spaces", 0, 0},
		{"ctx/a with spaces", 1, 1},
		{"ctx/a with spaces", 0, TextLevel},
	}
	for _, k := range keys {
		if err := s.Put(ctx, k, payload); err != nil {
			t.Fatalf("Put(%+v): %v", k, err)
		}
	}
	for _, k := range keys {
		got, err := s.Get(ctx, k)
		if err != nil {
			t.Fatalf("Get(%+v): %v", k, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("Get(%+v) = %v", k, got)
		}
	}

	// Returned data must be a copy.
	got, _ := s.Get(ctx, keys[0])
	got[0] = 99
	again, _ := s.Get(ctx, keys[0])
	if again[0] == 99 {
		t.Error("Get returns aliased data")
	}

	// Meta round trip.
	meta := testMeta("ctx/a with spaces")
	if err := s.PutMeta(ctx, meta); err != nil {
		t.Fatalf("PutMeta: %v", err)
	}
	gotMeta, err := s.GetMeta(ctx, meta.ContextID)
	if err != nil {
		t.Fatalf("GetMeta: %v", err)
	}
	if gotMeta.TokenCount != 250 || gotMeta.NumChunks() != 3 || gotMeta.Levels != 2 {
		t.Errorf("meta mismatch: %+v", gotMeta)
	}

	// Listing.
	if err := s.PutMeta(ctx, testMeta("ctx/b")); err != nil {
		t.Fatal(err)
	}
	ids, err := s.ListContexts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "ctx/a with spaces" || ids[1] != "ctx/b" {
		t.Errorf("ListContexts = %v", ids)
	}

	// Delete removes meta and chunks.
	if err := s.DeleteContext(ctx, "ctx/a with spaces"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, keys[0]); !errors.Is(err, ErrNotFound) {
		t.Error("chunk survived DeleteContext")
	}
	if _, err := s.GetMeta(ctx, "ctx/a with spaces"); !errors.Is(err, ErrNotFound) {
		t.Error("meta survived DeleteContext")
	}
	ids, _ = s.ListContexts(ctx)
	if len(ids) != 1 {
		t.Errorf("after delete ListContexts = %v", ids)
	}

	// Validation.
	if err := s.Put(ctx, ChunkKey{"", 0, 0}, payload); err == nil {
		t.Error("Put accepted empty context id")
	}
	if err := s.Put(ctx, ChunkKey{"x", -1, 0}, payload); err == nil {
		t.Error("Put accepted negative chunk")
	}
	if err := s.Put(ctx, ChunkKey{"x", 0, -2}, payload); err == nil {
		t.Error("Put accepted invalid level")
	}
	bad := testMeta("bad")
	bad.TokenCount = 1
	if err := s.PutMeta(ctx, bad); err == nil {
		t.Error("PutMeta accepted inconsistent token count")
	}
}

func TestMemStore(t *testing.T) { storeTest(t, NewMemStore()) }

func TestFileStore(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeTest(t, s)
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := ChunkKey{"persist", 0, 1}
	if err := s1.Put(ctx, key, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s1.PutMeta(ctx, ContextMeta{
		ContextID: "persist", TokenCount: 10, ChunkTokens: []int{10},
		Levels: 2, SizesBytes: [][]int64{{5}, {3}},
	}); err != nil {
		t.Fatal(err)
	}

	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := s2.Get(ctx, key)
	if err != nil || string(data) != "hello" {
		t.Errorf("reopened Get = %q, %v", data, err)
	}
	ids, err := s2.ListContexts(ctx)
	if err != nil || len(ids) != 1 || ids[0] != "persist" {
		t.Errorf("reopened ListContexts = %v, %v", ids, err)
	}
}

func TestMetaValidate(t *testing.T) {
	good := testMeta("x")
	if err := good.Validate(); err != nil {
		t.Errorf("valid meta rejected: %v", err)
	}
	cases := []func(*ContextMeta){
		func(m *ContextMeta) { m.ContextID = "" },
		func(m *ContextMeta) { m.Levels = 0 },
		func(m *ContextMeta) { m.SizesBytes = m.SizesBytes[:1] },
		func(m *ContextMeta) { m.ChunkTokens[0] = 0 },
		func(m *ContextMeta) { m.SizesBytes[0] = m.SizesBytes[0][:1] },
		func(m *ContextMeta) { m.TextBytes = m.TextBytes[:1] },
	}
	for i, mutate := range cases {
		m := testMeta("x")
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid meta accepted", i)
		}
	}
}

func TestMetaTotalBytes(t *testing.T) {
	m := testMeta("x")
	// Sizes: (10+10+5)+(6+6+3) + text (400+400+200) = 25+15+1000 = 1040.
	if got := m.TotalBytes(); got != 1040 {
		t.Errorf("TotalBytes = %d, want 1040", got)
	}
}

func TestEncodeDecodeID(t *testing.T) {
	for _, id := range []string{"simple", "with/slash", "with space", "ünïcode-ctx", ".."} {
		enc := encodeID(id)
		got, err := decodeID(enc)
		if err != nil || got != id {
			t.Errorf("id %q: round trip %q, %v", id, got, err)
		}
		if got := enc; got != "" && (got[0] == '.' || got[0] == '/') {
			t.Errorf("encoded id %q can escape directory", got)
		}
	}
}
