package storage

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func testMeta(id string) ContextMeta {
	return ContextMeta{
		ContextID:   id,
		Model:       "test",
		TokenCount:  250,
		ChunkTokens: []int{100, 100, 50},
		Levels:      2,
		SizesBytes:  [][]int64{{10, 10, 5}, {6, 6, 3}},
		TextBytes:   []int64{400, 400, 200},
	}
}

// testManifest builds a manifest over synthetic payloads derived from the
// context id and stores those payloads in s, so refcounts are realistic.
func testManifest(t *testing.T, s Store, id string) Manifest {
	t.Helper()
	ctx := context.Background()
	meta := testMeta(id)
	m := Manifest{Meta: meta, Hashes: map[int][]string{}}
	for _, lv := range []int{0, 1, TextLevel} {
		row := make([]string, meta.NumChunks())
		for c := range row {
			payload := []byte(fmt.Sprintf("%s|%d|%d", id, lv, c))
			h := HashChunk(payload)
			if err := s.PutChunk(ctx, h, payload); err != nil {
				t.Fatalf("PutChunk: %v", err)
			}
			row[c] = h
		}
		m.Hashes[lv] = row
	}
	return m
}

// storeTest exercises a Store implementation through its full lifecycle.
func storeTest(t *testing.T, s Store) {
	t.Helper()
	ctx := context.Background()

	missingHash := HashChunk([]byte("missing"))
	if _, err := s.GetChunk(ctx, missingHash); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetChunk missing: %v", err)
	}
	if ok, err := s.TouchChunk(ctx, missingHash); err != nil || ok {
		t.Errorf("TouchChunk missing = %v, %v", ok, err)
	}
	if _, err := s.GetManifest(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetManifest missing: %v", err)
	}
	if err := s.DeleteContext(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("DeleteContext missing: %v", err)
	}
	if _, err := s.GetFingerprint(ctx, "ab12"); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetFingerprint missing: %v", err)
	}

	// Chunk round trip; PutChunk is idempotent.
	payload := []byte{1, 2, 3, 4, 5}
	hash := HashChunk(payload)
	for i := 0; i < 2; i++ {
		if err := s.PutChunk(ctx, hash, payload); err != nil {
			t.Fatalf("PutChunk (round %d): %v", i, err)
		}
	}
	got, err := s.GetChunk(ctx, hash)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("GetChunk = %v, %v", got, err)
	}
	// Returned data must be a copy (MemStore) or a fresh read (FileStore).
	got[0] = 99
	again, _ := s.GetChunk(ctx, hash)
	if again[0] == 99 {
		t.Error("GetChunk returns aliased data")
	}
	if ok, err := s.TouchChunk(ctx, hash); err != nil || !ok {
		t.Errorf("TouchChunk existing = %v, %v", ok, err)
	}

	// Manifest round trip (context ids with awkward characters included).
	m := testManifest(t, s, "ctx/a with spaces")
	if err := s.PutManifest(ctx, m); err != nil {
		t.Fatalf("PutManifest: %v", err)
	}
	gm, err := s.GetManifest(ctx, "ctx/a with spaces")
	if err != nil {
		t.Fatalf("GetManifest: %v", err)
	}
	if gm.Meta.TokenCount != 250 || gm.Meta.NumChunks() != 3 || gm.Meta.Levels != 2 {
		t.Errorf("manifest meta mismatch: %+v", gm.Meta)
	}
	if h, err := gm.ChunkHash(TextLevel, 2); err != nil || h != m.Hashes[TextLevel][2] {
		t.Errorf("ChunkHash = %q, %v", h, err)
	}

	// Fingerprint round trip.
	fp := Fingerprint{Hash: hash, Bytes: int64(len(payload))}
	if err := s.PutFingerprint(ctx, "ab12cd", fp); err != nil {
		t.Fatalf("PutFingerprint: %v", err)
	}
	if got, err := s.GetFingerprint(ctx, "ab12cd"); err != nil || got != fp {
		t.Errorf("GetFingerprint = %+v, %v", got, err)
	}

	// Listing.
	if err := s.PutManifest(ctx, testManifest(t, s, "ctx/b")); err != nil {
		t.Fatal(err)
	}
	ids, err := s.ListContexts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "ctx/a with spaces" || ids[1] != "ctx/b" {
		t.Errorf("ListContexts = %v", ids)
	}

	// Delete drops the manifest; payloads survive until a sweep.
	if err := s.DeleteContext(ctx, "ctx/a with spaces"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetManifest(ctx, "ctx/a with spaces"); !errors.Is(err, ErrNotFound) {
		t.Error("manifest survived DeleteContext")
	}
	if _, err := s.GetChunk(ctx, m.Hashes[0][0]); err != nil {
		t.Errorf("payload reclaimed before sweep: %v", err)
	}
	ids, _ = s.ListContexts(ctx)
	if len(ids) != 1 {
		t.Errorf("after delete ListContexts = %v", ids)
	}

	// Validation.
	if err := s.PutChunk(ctx, "short", payload); err == nil {
		t.Error("PutChunk accepted malformed hash")
	}
	if err := s.PutChunk(ctx, "ZZ"+hash[2:], payload); err == nil {
		t.Error("PutChunk accepted non-hex hash")
	}
	bad := m
	bad.Meta.TokenCount = 1
	if err := s.PutManifest(ctx, bad); err == nil {
		t.Error("PutManifest accepted inconsistent token count")
	}
	if err := s.PutFingerprint(ctx, "../evil", fp); err == nil {
		t.Error("PutFingerprint accepted path-escaping key")
	}
}

// sweepTest exercises refcounted GC on a Store implementation.
func sweepTest(t *testing.T, s Store) {
	t.Helper()
	ctx := context.Background()

	// Two contexts sharing chunk payloads where their ids collide in the
	// synthetic payload scheme — build explicit overlap instead: B's level
	// rows reuse A's chunk 0 payloads.
	a := testManifest(t, s, "gc/a")
	if err := s.PutManifest(ctx, a); err != nil {
		t.Fatal(err)
	}
	b := testManifest(t, s, "gc/b")
	for _, lv := range []int{0, 1, TextLevel} {
		b.Hashes[lv][0] = a.Hashes[lv][0] // shared prefix chunk
	}
	if err := s.PutManifest(ctx, b); err != nil {
		t.Fatal(err)
	}
	// An orphan payload no manifest references, plus a fingerprint to it.
	orphan := []byte("orphan payload")
	orphanHash := HashChunk(orphan)
	if err := s.PutChunk(ctx, orphanHash, orphan); err != nil {
		t.Fatal(err)
	}
	if err := s.PutFingerprint(ctx, "aaaa01", Fingerprint{Hash: orphanHash, Bytes: int64(len(orphan))}); err != nil {
		t.Fatal(err)
	}

	// A grace-age sweep must not reclaim the freshly written orphan.
	res, err := s.Sweep(ctx, time.Hour)
	if err != nil {
		t.Fatalf("graceful sweep: %v", err)
	}
	if res.RemovedChunks != 0 {
		t.Errorf("grace sweep reclaimed %d young chunks", res.RemovedChunks)
	}

	// An immediate sweep reclaims the orphan (and its fingerprint) plus
	// the three gc/b chunk-0 payloads orphaned when B adopted A's hashes.
	res, err = s.Sweep(ctx, 0)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.RemovedChunks != 4 || res.ReclaimedBytes < int64(len(orphan)) {
		t.Errorf("sweep = %+v, want 4 chunks", res)
	}
	if res.PrunedFingerprints != 1 {
		t.Errorf("sweep pruned %d fingerprints, want 1", res.PrunedFingerprints)
	}
	if _, err := s.GetChunk(ctx, orphanHash); !errors.Is(err, ErrNotFound) {
		t.Error("orphan survived sweep")
	}

	// Delete A: its unique payloads become garbage, shared ones survive
	// through B's references.
	if err := s.DeleteContext(ctx, "gc/a"); err != nil {
		t.Fatal(err)
	}
	before, err := s.Usage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Sweep(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A had 3 chunks × 3 levels = 9 payloads; chunk 0's three are shared.
	if res.RemovedChunks != 6 {
		t.Errorf("sweep after delete reclaimed %d chunks, want 6", res.RemovedChunks)
	}
	after, err := s.Usage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Chunks != before.Chunks-6 || after.ChunkBytes >= before.ChunkBytes {
		t.Errorf("usage before %+v after %+v", before, after)
	}
	// B must be fully intact, including the shared chunk 0 payloads.
	gb, err := s.GetManifest(ctx, "gc/b")
	if err != nil {
		t.Fatal(err)
	}
	for _, lv := range []int{0, 1, TextLevel} {
		for c := 0; c < gb.Meta.NumChunks(); c++ {
			h, err := gb.ChunkHash(lv, c)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.GetChunk(ctx, h); err != nil {
				t.Errorf("surviving context lost chunk (lv %d, c %d): %v", lv, c, err)
			}
		}
	}

	// Replacing a manifest (the append path) releases the references of
	// the version it replaces.
	b2 := gb
	b2.Hashes = map[int][]string{}
	for lv, row := range gb.Hashes {
		b2.Hashes[lv] = append([]string{}, row...)
	}
	repl := []byte("replacement payload")
	replHash := HashChunk(repl)
	if err := s.PutChunk(ctx, replHash, repl); err != nil {
		t.Fatal(err)
	}
	oldHash := b2.Hashes[0][2]
	b2.Hashes[0][2] = replHash
	if err := s.PutManifest(ctx, b2); err != nil {
		t.Fatal(err)
	}
	res, err = s.Sweep(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedChunks != 1 || res.RemovedHashes[0] != oldHash {
		t.Errorf("replacement sweep = %+v, want exactly %s", res, oldHash)
	}
}

func TestMemStore(t *testing.T)      { storeTest(t, NewMemStore()) }
func TestMemStoreSweep(t *testing.T) { sweepTest(t, NewMemStore()) }

func TestFileStore(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeTest(t, s)
}

func TestFileStoreSweep(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sweepTest(t, s)
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest(t, s1, "persist")
	if err := s1.PutManifest(ctx, m); err != nil {
		t.Fatal(err)
	}
	orphan := []byte("reopen orphan")
	if err := s1.PutChunk(ctx, HashChunk(orphan), orphan); err != nil {
		t.Fatal(err)
	}

	// Refcounts are derived from manifests at open: after reopen, a sweep
	// must reclaim exactly the orphan and keep every referenced payload.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := s2.GetManifest(ctx, "persist")
	if err != nil || gm.Meta.TokenCount != 250 {
		t.Fatalf("reopened GetManifest = %+v, %v", gm.Meta, err)
	}
	res, err := s2.Sweep(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedChunks != 1 || res.RemovedHashes[0] != HashChunk(orphan) {
		t.Errorf("reopened sweep = %+v, want only the orphan", res)
	}
	for _, lv := range []int{0, 1, TextLevel} {
		for c := 0; c < 3; c++ {
			h, _ := gm.ChunkHash(lv, c)
			if _, err := s2.GetChunk(ctx, h); err != nil {
				t.Errorf("referenced chunk (lv %d, c %d) lost across reopen: %v", lv, c, err)
			}
		}
	}
}

func TestManifestValidate(t *testing.T) {
	s := NewMemStore()
	good := testManifest(t, s, "x")
	if err := good.Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
	cases := []func(*Manifest){
		func(m *Manifest) { m.Meta.ContextID = "" },
		func(m *Manifest) { m.Meta.Levels = 0 },
		func(m *Manifest) { delete(m.Hashes, 1) },
		func(m *Manifest) { m.Hashes[0] = m.Hashes[0][:1] },
		func(m *Manifest) { m.Hashes[0][0] = "nothex" },
		func(m *Manifest) { delete(m.Hashes, TextLevel) },
		func(m *Manifest) { m.ChainDigests = []string{"one"} },
	}
	for i, mutate := range cases {
		m := testManifest(t, s, "x")
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid manifest accepted", i)
		}
	}
}

func TestMetaTotalBytes(t *testing.T) {
	m := testMeta("x")
	// Sizes: (10+10+5)+(6+6+3) + text (400+400+200) = 25+15+1000 = 1040.
	if got := m.TotalBytes(); got != 1040 {
		t.Errorf("TotalBytes = %d, want 1040", got)
	}
}

func TestEncodeDecodeID(t *testing.T) {
	for _, id := range []string{"simple", "with/slash", "with space", "ünïcode-ctx", ".."} {
		enc := encodeID(id)
		got, err := decodeID(enc)
		if err != nil || got != id {
			t.Errorf("id %q: round trip %q, %v", id, got, err)
		}
		if got := enc; got != "" && (got[0] == '.' || got[0] == '/') {
			t.Errorf("encoded id %q can escape directory", got)
		}
	}
}
