package streamer

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// Append extends a published context with newTokens — the multi-turn
// update the paper sketches in §9 ("KV cache of the new context can be
// incrementally updated"), made cheap by the content-addressed store: the
// clean chunk prefix of the old manifest is adopted by reference, and
// only the dirty suffix is re-encoded — the old partial tail chunk (its
// content grows) plus the chunks the new tokens introduce. A
// conversation therefore publishes per turn work proportional to the
// turn, not to the whole history.
//
// opts.KV, when set, must be the full cache of the extended context (a
// live session has it resident after generating the turn); the engine
// slices out the dirty range. Without it, Append reconstructs the old
// token stream from the stored text payloads (exact) and recomputes the
// needed KV — still skipping every prefix re-encode, which dominates.
func Append(ctx context.Context, st storage.Store, codec *core.Codec, model *llm.Model,
	contextID string, newTokens []llm.Token, opts PublishOptions) (storage.Manifest, *PublishStats, error) {

	if len(newTokens) == 0 {
		return storage.Manifest{}, nil, fmt.Errorf("streamer: appending no tokens to %q", contextID)
	}
	old, err := st.GetManifest(ctx, contextID)
	if err != nil {
		return storage.Manifest{}, nil, fmt.Errorf("streamer: appending to %q: %w", contextID, err)
	}
	if old.Meta.Model != model.Config().Name {
		return storage.Manifest{}, nil, fmt.Errorf("streamer: context %q was published for model %q, not %q",
			contextID, old.Meta.Model, model.Config().Name)
	}
	if old.Meta.Levels != codec.Config().Levels() {
		return storage.Manifest{}, nil, fmt.Errorf("streamer: context %q has %d levels, codec has %d",
			contextID, old.Meta.Levels, codec.Config().Levels())
	}
	targets := old.Meta.RefineTargets
	if opts.RefineTargets != nil {
		want, err := refineTargetInts(codec, opts.RefineTargets)
		if err != nil {
			return storage.Manifest{}, nil, err
		}
		if !equalInts(want, targets) {
			return storage.Manifest{}, nil, fmt.Errorf("streamer: context %q was published with refinement targets %v, append requested %v",
				contextID, targets, want)
		}
	}

	oldT := old.Meta.TokenCount
	total := oldT + len(newTokens)
	chunkTok := codec.Config().ChunkTokens
	dirtyFrom := oldT / chunkTok // first chunk whose content changes
	dirtyStart := dirtyFrom * chunkTok
	if got := len(old.ChainDigests); got != old.Meta.NumChunks() {
		return storage.Manifest{}, nil, fmt.Errorf("streamer: context %q has %d chain digests for %d chunks (published before append support?); republish it",
			contextID, got, old.Meta.NumChunks())
	}
	prevChain := ""
	if dirtyFrom > 0 {
		prevChain = old.ChainDigests[dirtyFrom-1]
	}

	// Recover the dirty tail's old tokens from the stored text payload:
	// the caller only supplies the appended turn.
	var tail []llm.Token
	if dirtyStart < oldT {
		tail, err = StoredTokens(ctx, st, old, dirtyFrom, dirtyFrom+1)
		if err != nil {
			return storage.Manifest{}, nil, err
		}
		if len(tail) != oldT-dirtyStart {
			return storage.Manifest{}, nil, fmt.Errorf("streamer: context %q tail chunk has %d tokens, meta says %d",
				contextID, len(tail), oldT-dirtyStart)
		}
	}
	suffix := make([]llm.Token, 0, len(tail)+len(newTokens))
	suffix = append(suffix, tail...)
	suffix = append(suffix, newTokens...)

	var kvFor func() (*tensor.KV, error)
	switch {
	case opts.KV != nil:
		if opts.KV.Tokens != total {
			return storage.Manifest{}, nil, fmt.Errorf("streamer: appended cache covers %d tokens, context grows to %d", opts.KV.Tokens, total)
		}
		kvFor = kvProvider(model, nil, opts.KV, dirtyStart)
	default:
		// Exact fallback: rebuild the full token stream from stored text
		// and recompute. Costs KV compute, never prefix re-encodes.
		prefix, err := StoredTokens(ctx, st, old, 0, dirtyFrom)
		if err != nil {
			return storage.Manifest{}, nil, err
		}
		full := make([]llm.Token, 0, total)
		full = append(full, prefix...)
		full = append(full, suffix...)
		if len(full) != total {
			return storage.Manifest{}, nil, fmt.Errorf("streamer: context %q stored text holds %d tokens, want %d",
				contextID, len(full), total)
		}
		kvFor = kvProvider(model, full, nil, dirtyStart)
	}

	job := publishJob{
		contextID:    contextID,
		total:        total,
		firstChunk:   dirtyFrom,
		startOffset:  dirtyStart,
		prevChain:    prevChain,
		suffixTokens: suffix,
		targets:      targets,
		scale:        normScale(opts.SizeScale),
		kv:           kvFor,
	}
	frag, err := encodeChunks(ctx, st, codec, model, job)
	if err != nil {
		return storage.Manifest{}, nil, err
	}

	// Stitch: clean prefix rows by reference, fragment rows for the rest.
	man := storage.Manifest{
		Meta: storage.ContextMeta{
			ContextID:   contextID,
			Model:       old.Meta.Model,
			TokenCount:  total,
			ChunkTokens: append(append([]int{}, old.Meta.ChunkTokens[:dirtyFrom]...), frag.chunkTokens...),
			Levels:      old.Meta.Levels,
			TextBytes:   append(append([]int64{}, old.Meta.TextBytes[:dirtyFrom]...), frag.sizes[storage.TextLevel]...),
		},
		Hashes:       map[int][]string{},
		ChainDigests: append(append([]string{}, old.ChainDigests[:dirtyFrom]...), frag.chains...),
	}
	man.Meta.SizesBytes = make([][]int64, old.Meta.Levels)
	for lv := 0; lv < old.Meta.Levels; lv++ {
		man.Meta.SizesBytes[lv] = append(append([]int64{}, old.Meta.SizesBytes[lv][:dirtyFrom]...), frag.sizes[lv]...)
		man.Hashes[lv] = append(append([]string{}, old.Hashes[lv][:dirtyFrom]...), frag.hashes[lv]...)
	}
	man.Hashes[storage.TextLevel] = append(append([]string{}, old.Hashes[storage.TextLevel][:dirtyFrom]...), frag.hashes[storage.TextLevel]...)
	for ti, t := range targets {
		key := storage.RefineLevelKey(t)
		man.Meta.RefineTargets = append(man.Meta.RefineTargets, t)
		man.Meta.RefineBytes = append(man.Meta.RefineBytes,
			append(append([]int64{}, old.Meta.RefineBytes[ti][:dirtyFrom]...), frag.sizes[key]...))
		man.Hashes[key] = append(append([]string{}, old.Hashes[key][:dirtyFrom]...), frag.hashes[key]...)
	}
	if err := st.PutManifest(ctx, man); err != nil {
		return storage.Manifest{}, nil, fmt.Errorf("streamer: storing manifest: %w", err)
	}
	frag.stats.Chunks = man.Meta.NumChunks()
	frag.stats.ReusedChunks = dirtyFrom
	return man, &frag.stats, nil
}

// StoredTokens reassembles the exact token stream of chunks [from, to)
// from the context's stored text payloads.
func StoredTokens(ctx context.Context, st storage.Store, man storage.Manifest, from, to int) ([]llm.Token, error) {
	var out []llm.Token
	for c := from; c < to; c++ {
		hash, err := man.ChunkHash(storage.TextLevel, c)
		if err != nil {
			return nil, fmt.Errorf("streamer: %w", err)
		}
		payload, err := st.GetChunk(ctx, hash)
		if err != nil {
			return nil, fmt.Errorf("streamer: reading stored text of chunk %d: %w", c, err)
		}
		toks, err := llm.DecodeTokens(payload)
		if err != nil {
			return nil, fmt.Errorf("streamer: decoding stored text of chunk %d: %w", c, err)
		}
		out = append(out, toks...)
	}
	return out, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
