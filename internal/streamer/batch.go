package streamer

import (
	"fmt"
	"time"

	"repro/internal/llm"
	"repro/internal/netsim"
)

// Multi-request batching (§5.3): "When multiple requests arrive
// concurrently within T seconds, CacheGen batches and streams them
// together. … Each request is divided into chunks of the same size … For
// each chunk index c, CacheGen determines the number of requests N_c that
// include chunk c [and] calculates the expected delays for each
// configuration by multiplying N_c by the delay for a single request."

// BatchRequest is one request in a batched stream.
type BatchRequest struct {
	// Chunks is the request's per-chunk metadata.
	Chunks []ChunkInfo
	// TotalTokens is the request's context length.
	TotalTokens int
	// SuffixTokens is the prompt suffix (0 = 32).
	SuffixTokens int
}

// BatchInput describes a batched streaming round.
type BatchInput struct {
	Requests []BatchRequest
	// Link is the shared storage-to-GPU link.
	Link *netsim.Link
	// Planner is the per-request adaptation policy; its Concurrency field
	// is overridden per chunk index with the live N_c.
	Planner Planner
	Model   llm.Config
	Device  llm.Device
	// MaxBatch is B, the most requests the GPU server can handle together
	// (0 = unlimited). Extra requests are rejected, mirroring admission
	// control.
	MaxBatch int
}

// SimulateBatch streams a batch of requests over one shared link in
// virtual time. Chunk indices advance in lockstep: at index c, every
// request that still has a chunk picks its configuration (with N_c as the
// batching factor) and the N_c transfers share the link back to back.
// Decode/recompute remains per request and pipelines with the next
// index's transfers. Requests' KV caches are padded and processed
// together on the GPU (§5.3), so the per-request GPU share is 1/N_c.
func SimulateBatch(in BatchInput) ([]*SimResult, error) {
	if len(in.Requests) == 0 {
		return nil, fmt.Errorf("streamer: empty batch")
	}
	if in.MaxBatch > 0 && len(in.Requests) > in.MaxBatch {
		return nil, fmt.Errorf("streamer: batch of %d exceeds server capacity %d", len(in.Requests), in.MaxBatch)
	}
	if in.Link == nil {
		return nil, fmt.Errorf("streamer: nil link")
	}
	maxChunks := 0
	for i, r := range in.Requests {
		if len(r.Chunks) == 0 {
			return nil, fmt.Errorf("streamer: request %d has no chunks", i)
		}
		if len(r.Chunks) > maxChunks {
			maxChunks = len(r.Chunks)
		}
	}

	link := in.Link
	start := link.Now()
	results := make([]*SimResult, len(in.Requests))
	ready := make([]time.Duration, len(in.Requests))
	for i := range results {
		results[i] = &SimResult{}
		ready[i] = start
	}
	var throughput float64

	for c := 0; c < maxChunks; c++ {
		// N_c: how many requests still include chunk c.
		nc := 0
		for _, r := range in.Requests {
			if c < len(r.Chunks) {
				nc++
			}
		}
		share := 1.0 / float64(nc)

		for i, r := range in.Requests {
			if c >= len(r.Chunks) {
				continue
			}
			elapsed := link.Now() - start
			p := in.Planner
			p.Concurrency = nc
			choice, err := p.Choose(c, elapsed, throughput, r.Chunks)
			if err != nil {
				return nil, fmt.Errorf("streamer: request %d: %w", i, err)
			}
			ch := r.Chunks[c]
			var bytes int64
			var compute time.Duration
			if choice.Text {
				bytes = ch.TextBytes
				// Recompute estimates were built at full share; scale to
				// the batched share.
				compute = time.Duration(float64(ch.Recompute) / share)
			} else {
				bytes = ch.SizesByLevel[choice.Level]
				compute = in.Device.DecodeTime(bytes)
			}
			link.Advance(in.Planner.RTT)
			dur, err := link.Transfer(bytes)
			if err != nil {
				return nil, fmt.Errorf("streamer: request %d chunk %d: %w", i, c, err)
			}
			transferEnd := link.Now()
			throughput = netsim.Throughput(bytes, dur)
			ready[i] = maxTime(ready[i], transferEnd) + compute

			results[i].Decisions = append(results[i].Decisions, ChunkDecision{
				Chunk: c, Choice: choice, Bytes: bytes,
				Transfer: dur, Compute: compute, Throughput: throughput,
			})
			results[i].BytesSent += bytes
			results[i].NetworkTime += dur
			results[i].ComputeTime += compute
		}
	}

	for i, r := range in.Requests {
		suffix := r.SuffixTokens
		if suffix == 0 {
			suffix = 32
		}
		// The final prompt prefills run batched across all B requests.
		share := 1.0 / float64(len(in.Requests))
		results[i].SuffixTime = in.Model.MarginalPrefillTime(r.TotalTokens, suffix, in.Device, share)
		results[i].TTFT = maxTime(link.Now(), ready[i]) + results[i].SuffixTime - start
		results[i].SLOMet = in.Planner.SLO <= 0 || results[i].TTFT <= in.Planner.SLO
	}
	return results, nil
}
