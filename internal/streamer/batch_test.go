package streamer

import (
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/netsim"
)

func batchInput(t *testing.T, n int, trace netsim.Trace, p Planner) BatchInput {
	t.Helper()
	model := llm.Mistral7B()
	dev := llm.A40x4()
	chunks, err := BuildChunkInfos(simMeta(), model, dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]BatchRequest, n)
	for i := range reqs {
		reqs[i] = BatchRequest{Chunks: chunks, TotalTokens: 6000}
	}
	return BatchInput{
		Requests: reqs,
		Link:     netsim.NewLink(trace),
		Planner:  p,
		Model:    model,
		Device:   dev,
	}
}

func TestSimulateBatchValidation(t *testing.T) {
	in := batchInput(t, 2, netsim.Constant(netsim.Gbps(3)), Planner{Adapt: false, DefaultLevel: 1})
	in.Requests = nil
	if _, err := SimulateBatch(in); err == nil {
		t.Error("empty batch accepted")
	}
	in = batchInput(t, 2, netsim.Constant(netsim.Gbps(3)), Planner{Adapt: false, DefaultLevel: 1})
	in.Link = nil
	if _, err := SimulateBatch(in); err == nil {
		t.Error("nil link accepted")
	}
	in = batchInput(t, 3, netsim.Constant(netsim.Gbps(3)), Planner{Adapt: false, DefaultLevel: 1})
	in.MaxBatch = 2
	if _, err := SimulateBatch(in); err == nil {
		t.Error("over-capacity batch accepted")
	}
	in = batchInput(t, 2, netsim.Constant(netsim.Gbps(3)), Planner{Adapt: false, DefaultLevel: 1})
	in.Requests[1].Chunks = nil
	if _, err := SimulateBatch(in); err == nil {
		t.Error("request without chunks accepted")
	}
}

func TestSimulateBatchSharesBandwidth(t *testing.T) {
	p := Planner{Adapt: false, DefaultLevel: 1}
	solo, err := SimulateBatch(batchInput(t, 1, netsim.Constant(netsim.Gbps(3)), p))
	if err != nil {
		t.Fatal(err)
	}
	four, err := SimulateBatch(batchInput(t, 4, netsim.Constant(netsim.Gbps(3)), p))
	if err != nil {
		t.Fatal(err)
	}
	// Four identical requests over one link: the last request's TTFT
	// should be roughly 4x the solo TTFT (transfer-dominated workload).
	ratio := four[3].TTFT.Seconds() / solo[0].TTFT.Seconds()
	if ratio < 2.5 || ratio > 5.5 {
		t.Errorf("4-way batch TTFT ratio %.2f, want ≈4", ratio)
	}
	// All requests deliver all their chunks.
	for i, r := range four {
		if len(r.Decisions) != 4 {
			t.Errorf("request %d delivered %d chunks", i, len(r.Decisions))
		}
	}
}

func TestSimulateBatchAdaptsToCrowding(t *testing.T) {
	// Under an SLO, a crowded batch must pick lower-quality levels than a
	// solo request (N_c multiplies the expected delays, §5.3).
	p := Planner{Adapt: true, SLO: 2 * time.Second, DefaultLevel: 0, PriorBandwidth: netsim.Gbps(2)}
	// Make text unattractive so the comparison stays within levels.
	mkIn := func(n int) BatchInput {
		in := batchInput(t, n, netsim.Constant(netsim.Gbps(2)), p)
		for i := range in.Requests {
			chunks := append([]ChunkInfo{}, in.Requests[i].Chunks...)
			for j := range chunks {
				chunks[j].Recompute = 10 * time.Second
			}
			in.Requests[i].Chunks = chunks
		}
		return in
	}
	solo, err := SimulateBatch(mkIn(1))
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := SimulateBatch(mkIn(6))
	if err != nil {
		t.Fatal(err)
	}
	soloLevel := solo[0].Decisions[0].Choice.Level
	crowdLevel := crowd[0].Decisions[0].Choice.Level
	if crowdLevel <= soloLevel {
		t.Errorf("crowded batch picked level %d, solo picked %d — expected a downgrade", crowdLevel, soloLevel)
	}
}

func TestSimulateBatchUnevenLengths(t *testing.T) {
	model := llm.Mistral7B()
	dev := llm.A40x4()
	long, err := BuildChunkInfos(simMeta(), model, dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	shortMeta := simMeta()
	shortMeta.TokenCount = 3000
	shortMeta.ChunkTokens = []int{1500, 1500}
	for lv := range shortMeta.SizesBytes {
		shortMeta.SizesBytes[lv] = shortMeta.SizesBytes[lv][:2]
	}
	shortMeta.TextBytes = shortMeta.TextBytes[:2]
	short, err := BuildChunkInfos(shortMeta, model, dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateBatch(BatchInput{
		Requests: []BatchRequest{
			{Chunks: long, TotalTokens: 6000},
			{Chunks: short, TotalTokens: 3000},
		},
		Link:    netsim.NewLink(netsim.Constant(netsim.Gbps(3))),
		Planner: Planner{Adapt: false, DefaultLevel: 1},
		Model:   model,
		Device:  dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Decisions) != 4 || len(res[1].Decisions) != 2 {
		t.Errorf("decision counts %d/%d, want 4/2", len(res[0].Decisions), len(res[1].Decisions))
	}
	// N_c drops to 1 after the short request finishes; the long request's
	// later chunks should transfer as fast as its early ones despite the
	// earlier sharing.
	if res[1].TTFT >= res[0].TTFT {
		t.Errorf("short request (%v) should finish before long (%v)", res[1].TTFT, res[0].TTFT)
	}
}

func BenchmarkSimulateBatch(b *testing.B) {
	model := llm.Mistral7B()
	dev := llm.A40x4()
	chunks, err := BuildChunkInfos(simMeta(), model, dev, 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]BatchRequest, 8)
	for i := range reqs {
		reqs[i] = BatchRequest{Chunks: chunks, TotalTokens: 6000}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateBatch(BatchInput{
			Requests: reqs,
			Link:     netsim.NewLink(netsim.Constant(netsim.Gbps(3))),
			Planner:  Planner{Adapt: false, DefaultLevel: 1},
			Model:    model,
			Device:   dev,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
