package streamer

import (
	"context"
	"testing"

	"repro/internal/llm"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// mustSlice is SliceTokens or bust.
func mustSlice(t *testing.T, kv *tensor.KV, lo, hi int) *tensor.KV {
	t.Helper()
	out, err := kv.SliceTokens(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// Tests for the content-addressed publish path: cross-context dedup of
// shared prefixes, append-mode re-encoding of only the dirty suffix, and
// suffix-only fetching against a resident prefix.

// payloadRows counts the payload rows a context stores (levels + text).
func payloadRows(s *testStack) int { return s.codec.Config().Levels() + 1 }

func TestPublishDedupSharedPrefix(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()
	store := storage.NewMemStore()

	manA, statsA, err := Publish(ctx, store, s.codec, s.model, "doc-a", s.tokens, PublishOptions{KV: s.kv})
	if err != nil {
		t.Fatal(err)
	}
	if statsA.PayloadsReused != 0 || statsA.EncodesSkipped != 0 {
		t.Fatalf("first publish dedup'd against empty store: %+v", statsA)
	}
	usageA, err := store.Usage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if usageA.ChunkBytes != statsA.BytesStored {
		t.Fatalf("usage %d != stored %d", usageA.ChunkBytes, statsA.BytesStored)
	}

	// doc-b shares doc-a's first two chunks (2×80 tokens) and diverges
	// after: the shared chunks must be stored exactly once.
	shared := 2 * s.codec.Config().ChunkTokens
	tokensB := append(append([]llm.Token{}, s.tokens[:shared]...), s.tokens...)
	tokensB = tokensB[:shared+90] // 90 fresh-position tokens after the shared prefix
	manB, statsB, err := Publish(ctx, store, s.codec, s.model, "doc-b", tokensB, PublishOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// The shared chunks' hashes are identical across the two manifests...
	for _, lv := range []int{0, 1, storage.TextLevel} {
		for c := 0; c < 2; c++ {
			ha, _ := manA.ChunkHash(lv, c)
			hb, _ := manB.ChunkHash(lv, c)
			if ha != hb {
				t.Errorf("level %d chunk %d: shared prefix hashed differently (%s vs %s)", lv, c, ha, hb)
			}
		}
	}
	// ...their encodes were skipped entirely (fingerprint index hits for
	// every bitstream row of both shared chunks)...
	wantSkips := 2 * (payloadRows(s) - 1) // text rows don't go through the encoder
	if statsB.EncodesSkipped != wantSkips {
		t.Errorf("EncodesSkipped = %d, want %d", statsB.EncodesSkipped, wantSkips)
	}
	// 2 shared chunks × all rows, plus one bonus: doc-b's chunk 2 repeats
	// doc-a's chunk-0 *tokens* at a different position, so its bitstreams
	// differ (KV is position-dependent) but its position-independent text
	// payload dedups by content address anyway.
	if statsB.PayloadsReused != 2*payloadRows(s)+1 {
		t.Errorf("PayloadsReused = %d, want %d", statsB.PayloadsReused, 2*payloadRows(s)+1)
	}
	// ...and the byte accounting proves single storage: the store grew by
	// exactly doc-b's unique bytes.
	usageB, err := store.Usage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := usageB.ChunkBytes - usageA.ChunkBytes; got != statsB.BytesStored {
		t.Errorf("store grew %d bytes, stats say %d stored", got, statsB.BytesStored)
	}
	logical := manA.Meta.TotalBytes() + manB.Meta.TotalBytes()
	if usageB.ChunkBytes >= logical {
		t.Errorf("no dedup: physical %d ≥ logical %d", usageB.ChunkBytes, logical)
	}
}

func TestPublishSameContextTwiceStoresNothingNew(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()
	store := storage.NewMemStore()
	if _, _, err := Publish(ctx, store, s.codec, s.model, "dup", s.tokens, PublishOptions{KV: s.kv}); err != nil {
		t.Fatal(err)
	}
	before, _ := store.Usage(ctx)
	// Republishing under another id — and without the precomputed KV, so
	// even CalculateKV is skippable work the fingerprints avoid.
	_, stats, err := Publish(ctx, store, s.codec, s.model, "dup-2", s.tokens, PublishOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PayloadsStored != 0 || stats.BytesStored != 0 {
		t.Errorf("identical republish stored payloads: %+v", stats)
	}
	if stats.EncodedChunks != 0 {
		t.Errorf("identical republish encoded %d chunks", stats.EncodedChunks)
	}
	after, _ := store.Usage(ctx)
	if after.ChunkBytes != before.ChunkBytes {
		t.Errorf("store grew on identical republish: %d -> %d", before.ChunkBytes, after.ChunkBytes)
	}
}

func TestAppendReencodesOnlyDirtySuffix(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()
	store := storage.NewMemStore()
	chunkTok := s.codec.Config().ChunkTokens // 80

	// History: 200 tokens = 2 full chunks + a 40-token tail.
	history := s.tokens[:200]
	if _, _, err := Publish(ctx, store, s.codec, s.model, "chat", history, PublishOptions{}); err != nil {
		t.Fatal(err)
	}
	// Turn: 50 tokens → new total 250, dirty range = chunk 2 (tail grows
	// to 80) + chunk 3 (10 tokens).
	turn := s.tokens[200:250]
	man, stats, err := Append(ctx, store, s.codec, s.model, "chat", turn, PublishOptions{KV: mustSlice(t, s.kv, 0, 250)})
	if err != nil {
		t.Fatal(err)
	}
	if man.Meta.TokenCount != 250 || man.Meta.NumChunks() != 4 {
		t.Fatalf("appended meta = %+v", man.Meta)
	}
	wantDirty := 2 // the regrown tail chunk + one new chunk
	if stats.EncodedChunks != wantDirty || stats.ReusedChunks != 200/chunkTok {
		t.Errorf("append stats = %+v, want %d encoded / %d reused chunks", stats, wantDirty, 200/chunkTok)
	}

	// The appended manifest must be payload-identical to publishing the
	// full 250 tokens from scratch: encoding is deterministic, so append
	// correctness is exactly hash equality.
	fresh, _, err := Publish(ctx, store, s.codec, s.model, "chat-fresh", s.tokens[:250], PublishOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for lv, row := range fresh.Hashes {
		for c, want := range row {
			got, err := man.ChunkHash(lv, c)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("level %d chunk %d: append hash differs from fresh publish", lv, c)
			}
		}
	}
	// And the fresh publish itself was a total dedup hit (everything was
	// already stored by publish+append).
	if fresh.Meta.TokenCount != 250 {
		t.Fatal("fresh publish wrong length")
	}
}

func TestAppendWithoutResidentKV(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()
	store := storage.NewMemStore()
	if _, _, err := Publish(ctx, store, s.codec, s.model, "chat", s.tokens[:200], PublishOptions{}); err != nil {
		t.Fatal(err)
	}
	// No opts.KV: Append reconstructs tokens from stored text and
	// recomputes the dirty KV — results must be identical to the
	// KV-provided path (checked via the deterministic-hash property).
	man, _, err := Append(ctx, store, s.codec, s.model, "chat", s.tokens[200:250], PublishOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, err := Publish(ctx, store, s.codec, s.model, "fresh", s.tokens[:250], PublishOptions{KV: mustSlice(t, s.kv, 0, 250)})
	if err != nil {
		t.Fatal(err)
	}
	for lv, row := range fresh.Hashes {
		for c, want := range row {
			if got, _ := man.ChunkHash(lv, c); got != want {
				t.Errorf("level %d chunk %d: KV-less append hash differs", lv, c)
			}
		}
	}
}

func TestAppendValidation(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()
	store := storage.NewMemStore()
	if _, _, err := Append(ctx, store, s.codec, s.model, "missing", s.tokens[:10], PublishOptions{}); err == nil {
		t.Error("appended to a missing context")
	}
	if _, _, err := Publish(ctx, store, s.codec, s.model, "c", s.tokens[:100], PublishOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Append(ctx, store, s.codec, s.model, "c", nil, PublishOptions{}); err == nil {
		t.Error("appended zero tokens")
	}
	short, _ := s.kv.SliceTokens(0, 50)
	if _, _, err := Append(ctx, store, s.codec, s.model, "c", s.tokens[100:150], PublishOptions{KV: short}); err == nil {
		t.Error("appended with undersized KV")
	}
}

func TestFetchFromResidentPrefix(t *testing.T) {
	s := newStack(t)
	f := &Fetcher{
		Source:  s.client,
		Codec:   s.codec,
		Model:   s.model,
		Device:  llm.A40x4(),
		Planner: Planner{Adapt: false, DefaultLevel: 0},
	}
	ctx := context.Background()
	chunkTok := s.codec.Config().ChunkTokens

	// Resident prefix covering 2 chunks plus half a chunk: the partial
	// chunk is refetched, the 2 whole chunks are not.
	resident := mustSlice(t, s.kv, 0, 2*chunkTok+40)
	kv, report, err := f.FetchFrom(ctx, "ctx-1", resident)
	if err != nil {
		t.Fatal(err)
	}
	if kv.Tokens != len(s.tokens) {
		t.Fatalf("assembled %d tokens", kv.Tokens)
	}
	if report.ResidentTokens != 2*chunkTok {
		t.Errorf("ResidentTokens = %d, want %d", report.ResidentTokens, 2*chunkTok)
	}
	if len(report.Decisions) != s.meta.NumChunks()-2 {
		t.Errorf("fetched %d chunks, want %d cold ones", len(report.Decisions), s.meta.NumChunks()-2)
	}
	for _, d := range report.Decisions {
		if d.Chunk < 2 {
			t.Errorf("refetched resident chunk %d", d.Chunk)
		}
	}
	// The resident prefix is exact, so the assembled prefix must be too.
	diff, err := mustSlice(t, kv, 0, 2*chunkTok).MaxAbsDiff(mustSlice(t, resident, 0, 2*chunkTok))
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("resident prefix mutated in assembly (diff %g)", diff)
	}

	// Fully resident: no chunk moves, one manifest round trip.
	kv2, report2, err := f.FetchFrom(ctx, "ctx-1", s.kv)
	if err != nil {
		t.Fatal(err)
	}
	if len(report2.Decisions) != 0 || report2.BytesReceived != 0 {
		t.Errorf("fully-resident fetch still streamed: %+v", report2)
	}
	if kv2.Tokens != len(s.tokens) || report2.ResidentTokens != len(s.tokens) {
		t.Errorf("fully-resident fetch = %d tokens, resident %d", kv2.Tokens, report2.ResidentTokens)
	}

	// An oversized resident cache is rejected.
	big, err := s.model.ExtendKV(s.kv, len(s.tokens), s.tokens[:10])
	if err != nil {
		t.Fatal(err)
	}
	grown, err := tensor.ConcatTokens(s.kv, big)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.FetchFrom(ctx, "ctx-1", grown); err == nil {
		t.Error("accepted resident cache longer than the context")
	}
}
