package streamer

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// ChunkSource is anything that can serve a context's metadata and chunk
// payloads: a transport.Client connected to one storage server, or a
// cluster.Pool fanning requests out across a consistent-hash ring of
// them. The Fetcher streams through this interface, so the adaptation
// logic is identical for a single node and a fleet.
type ChunkSource interface {
	// GetMeta fetches a context's metadata.
	GetMeta(ctx context.Context, contextID string) (storage.ContextMeta, error)
	// GetChunk fetches one chunk payload at the given level
	// (storage.TextLevel fetches the token text).
	GetChunk(ctx context.Context, contextID string, chunk, level int) ([]byte, error)
}

// Fetcher streams a context's KV cache from a live chunk source:
// chunk-by-chunk adaptive fetching, decoding pipelined with transmission
// (§6), and text-fallback recompute through the model. It produces the
// reassembled KV cache ready for generate_with_kv.
type Fetcher struct {
	// Source serves metadata and chunks (a transport.Client or a
	// cluster.Pool).
	Source ChunkSource
	// Codec decodes chunk bitstreams (its bank must match the model).
	Codec *core.Codec
	// Model recomputes text-mode chunks and anchors cost estimates.
	Model *llm.Model
	// Device is used for the planner's recompute estimates.
	Device llm.Device
	// Planner holds the adaptation policy.
	Planner Planner
	// Start, if set, anchors the planner's elapsed-time budget (and the
	// report's LoadTime) to an earlier instant than the Fetch call — a
	// serving gateway sets it to the request's admission time so queueing
	// delay burns SLO budget and the per-chunk choices degrade accordingly.
	Start time.Time
}

// FetchReport describes how a live fetch went.
type FetchReport struct {
	// LoadTime is the wall-clock time from request to the full KV cache
	// being assembled (TTFT minus the prompt prefill, which the caller
	// performs).
	LoadTime time.Duration
	// Decisions records the per-chunk configuration choices.
	Decisions []ChunkDecision
	// BytesReceived is the total payload size fetched.
	BytesReceived int64
}

type decodeJob struct {
	idx     int
	offset  int
	tokens  int
	choice  Choice
	payload []byte
}

// Fetch retrieves and reassembles the KV cache of contextID. Decoding of
// chunk i−1 overlaps the transfer of chunk i via a pipeline goroutine.
func (f *Fetcher) Fetch(ctx context.Context, contextID string) (*tensor.KV, *FetchReport, error) {
	if f.Source == nil || f.Codec == nil || f.Model == nil {
		return nil, nil, fmt.Errorf("streamer: Fetcher needs Source, Codec and Model")
	}
	start := time.Now()
	if !f.Start.IsZero() {
		start = f.Start
	}
	meta, err := f.Source.GetMeta(ctx, contextID)
	if err != nil {
		return nil, nil, fmt.Errorf("streamer: fetching meta: %w", err)
	}
	infos, err := BuildChunkInfos(meta, f.Model.Config(), f.Device, 1)
	if err != nil {
		return nil, nil, fmt.Errorf("streamer: %w", err)
	}

	// Decode pipeline: a single worker consumes chunks in order (text
	// recompute depends on the previous chunks' KV).
	jobs := make(chan decodeJob, len(infos))
	parts := make([]*tensor.KV, len(infos))
	decodeErr := make(chan error, 1)
	go func() {
		defer close(decodeErr)
		var assembled *tensor.KV // concatenation of parts decoded so far
		var assembledTokens int
		for job := range jobs {
			part, err := f.decodeOne(job, assembled, assembledTokens)
			if err != nil {
				decodeErr <- fmt.Errorf("streamer: chunk %d: %w", job.idx, err)
				return
			}
			parts[job.idx] = part
			if assembled == nil {
				assembled = part
			} else {
				assembled, err = tensor.ConcatTokens(assembled, part)
				if err != nil {
					decodeErr <- fmt.Errorf("streamer: chunk %d: %w", job.idx, err)
					return
				}
			}
			assembledTokens += part.Tokens
		}
	}()

	report := &FetchReport{}
	var throughput float64
	offset := 0
	fetchFailed := func(err error) (*tensor.KV, *FetchReport, error) {
		close(jobs)
		<-decodeErr // drain the worker
		return nil, nil, err
	}
	for i, info := range infos {
		// An abandoned request (deadline hit, user gone) must stop issuing
		// chunk fetches, not stream the rest of the context to a caller
		// that will discard it.
		if err := ctx.Err(); err != nil {
			return fetchFailed(fmt.Errorf("streamer: cancelled before chunk %d: %w", i, err))
		}
		elapsed := time.Since(start)
		choice, err := f.Planner.Choose(i, elapsed, throughput, infos)
		if err != nil {
			return fetchFailed(fmt.Errorf("streamer: %w", err))
		}
		level := int(choice.Level)
		if choice.Text {
			level = storage.TextLevel
		}
		reqStart := time.Now()
		payload, err := f.Source.GetChunk(ctx, contextID, i, level)
		if err != nil {
			return fetchFailed(fmt.Errorf("streamer: fetching chunk %d (%s): %w", i, choice, err))
		}
		dur := time.Since(reqStart)
		throughput = netsim.Throughput(int64(len(payload)), dur)
		report.Decisions = append(report.Decisions, ChunkDecision{
			Chunk: i, Choice: choice, Bytes: int64(len(payload)),
			Transfer: dur, Throughput: throughput,
		})
		report.BytesReceived += int64(len(payload))
		jobs <- decodeJob{idx: i, offset: offset, tokens: info.Tokens, choice: choice, payload: payload}
		offset += info.Tokens
	}
	close(jobs)
	if err := <-decodeErr; err != nil {
		return nil, nil, err
	}

	kv, err := tensor.ConcatTokens(parts...)
	if err != nil {
		return nil, nil, fmt.Errorf("streamer: reassembling: %w", err)
	}
	if kv.Tokens != meta.TokenCount {
		return nil, nil, fmt.Errorf("streamer: reassembled %d tokens, meta says %d", kv.Tokens, meta.TokenCount)
	}
	report.LoadTime = time.Since(start)
	return kv, report, nil
}

// decodeOne turns one fetched payload into a KV part. prev is the
// concatenation of all previously decoded parts (needed for text
// recompute), covering prevTokens tokens.
func (f *Fetcher) decodeOne(job decodeJob, prev *tensor.KV, prevTokens int) (*tensor.KV, error) {
	if job.choice.Text {
		tokens, err := llm.DecodeTokens(job.payload)
		if err != nil {
			return nil, err
		}
		if len(tokens) != job.tokens {
			return nil, fmt.Errorf("text payload has %d tokens, meta says %d", len(tokens), job.tokens)
		}
		return f.Model.ExtendKV(prev, prevTokens, tokens)
	}
	ch, err := f.Codec.DecodeChunk(job.payload)
	if err != nil {
		return nil, err
	}
	if ch.Index != job.idx || ch.TokenOffset != job.offset {
		return nil, fmt.Errorf("chunk metadata mismatch: got (%d,%d), want (%d,%d)",
			ch.Index, ch.TokenOffset, job.idx, job.offset)
	}
	if ch.KV.Tokens != job.tokens {
		return nil, fmt.Errorf("chunk has %d tokens, meta says %d", ch.KV.Tokens, job.tokens)
	}
	return ch.KV, nil
}
