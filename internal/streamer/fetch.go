package streamer

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// ChunkSource is anything that can serve a context's manifest and chunk
// payloads: a transport.Client connected to one storage server, or a
// cluster.Pool fanning requests out across a consistent-hash ring of
// them. Payloads are addressed by content hash — the manifest is the
// only name→content indirection — so the adaptation logic is identical
// for a single node and a fleet.
type ChunkSource interface {
	// GetManifest fetches a context's manifest (hashes + metadata).
	GetManifest(ctx context.Context, contextID string) (storage.Manifest, error)
	// GetChunkData fetches one payload by content hash.
	GetChunkData(ctx context.Context, hash string) ([]byte, error)
}

// Fetcher streams a context's KV cache from a live chunk source:
// chunk-by-chunk adaptive fetching, decoding pipelined with transmission
// (§6), and text-fallback recompute through the model. It produces the
// reassembled KV cache ready for generate_with_kv.
type Fetcher struct {
	// Source serves manifests and chunks (a transport.Client or a
	// cluster.Pool).
	Source ChunkSource
	// Codec decodes chunk bitstreams (its bank must match the model).
	Codec *core.Codec
	// Model recomputes text-mode chunks and anchors cost estimates.
	Model *llm.Model
	// Device is used for the planner's recompute estimates.
	Device llm.Device
	// Planner holds the adaptation policy.
	Planner Planner
	// Start, if set, anchors the planner's elapsed-time budget (and the
	// report's LoadTime) to an earlier instant than the Fetch call — a
	// serving gateway sets it to the request's admission time so queueing
	// delay burns SLO budget and the per-chunk choices degrade accordingly.
	Start time.Time
}

// FetchReport describes how a live fetch went.
type FetchReport struct {
	// LoadTime is the wall-clock time from request to the full KV cache
	// being assembled (TTFT minus the prompt prefill, which the caller
	// performs).
	LoadTime time.Duration
	// Decisions records the per-chunk configuration choices (cold chunks
	// only; resident chunks are not fetched).
	Decisions []ChunkDecision
	// BytesReceived is the total payload size fetched.
	BytesReceived int64
	// ResidentTokens is the prefix served from the caller's resident KV
	// instead of the network (FetchFrom); 0 for a cold fetch.
	ResidentTokens int
}

type decodeJob struct {
	idx     int // absolute chunk index
	offset  int // absolute token offset
	tokens  int
	choice  Choice
	payload []byte
}

// Fetch retrieves and reassembles the KV cache of contextID. Decoding of
// chunk i−1 overlaps the transfer of chunk i via a pipeline goroutine.
func (f *Fetcher) Fetch(ctx context.Context, contextID string) (*tensor.KV, *FetchReport, error) {
	return f.FetchFrom(ctx, contextID, nil)
}

// FetchFrom is Fetch for a caller that already holds an exact KV prefix
// of the context — a chat session resuming with the previous turns
// resident. Only the cold suffix chunks are fetched and decoded; the
// resident prefix is adopted as-is (whole chunks only: a prefix ending
// mid-chunk refetches that chunk). With the whole context resident, no
// chunk moves at all and the call costs one manifest round trip.
func (f *Fetcher) FetchFrom(ctx context.Context, contextID string, resident *tensor.KV) (*tensor.KV, *FetchReport, error) {
	if f.Source == nil || f.Codec == nil || f.Model == nil {
		return nil, nil, fmt.Errorf("streamer: Fetcher needs Source, Codec and Model")
	}
	start := time.Now()
	if !f.Start.IsZero() {
		start = f.Start
	}
	man, err := f.Source.GetManifest(ctx, contextID)
	if err != nil {
		return nil, nil, fmt.Errorf("streamer: fetching manifest: %w", err)
	}
	meta := man.Meta
	infos, err := BuildChunkInfos(meta, f.Model.Config(), f.Device, 1)
	if err != nil {
		return nil, nil, fmt.Errorf("streamer: %w", err)
	}

	// Resolve how much of the resident prefix is usable: whole chunks.
	fromChunk, prefixTokens := 0, 0
	if resident != nil {
		if resident.Tokens > meta.TokenCount {
			return nil, nil, fmt.Errorf("streamer: resident cache has %d tokens, context %q has %d",
				resident.Tokens, contextID, meta.TokenCount)
		}
		for fromChunk < len(infos) && prefixTokens+infos[fromChunk].Tokens <= resident.Tokens {
			prefixTokens += infos[fromChunk].Tokens
			fromChunk++
		}
	}
	report := &FetchReport{ResidentTokens: prefixTokens}
	var prefix *tensor.KV
	if prefixTokens > 0 {
		prefix, err = resident.SliceTokens(0, prefixTokens)
		if err != nil {
			return nil, nil, fmt.Errorf("streamer: %w", err)
		}
	}
	if fromChunk == len(infos) {
		// Fully resident: nothing to stream.
		report.LoadTime = time.Since(start)
		return prefix, report, nil
	}
	suffixInfos := infos[fromChunk:]

	// Decode pipeline: a single worker consumes chunks in order (text
	// recompute depends on the previous chunks' KV).
	jobs := make(chan decodeJob, len(suffixInfos))
	parts := make([]*tensor.KV, len(suffixInfos))
	decodeErr := make(chan error, 1)
	go func() {
		defer close(decodeErr)
		assembled := prefix // concatenation of resident prefix + parts decoded so far
		assembledTokens := prefixTokens
		for job := range jobs {
			part, err := f.decodeOne(job, assembled, assembledTokens)
			if err != nil {
				decodeErr <- fmt.Errorf("streamer: chunk %d: %w", job.idx, err)
				return
			}
			parts[job.idx-fromChunk] = part
			if assembled == nil {
				assembled = part
			} else {
				assembled, err = tensor.ConcatTokens(assembled, part)
				if err != nil {
					decodeErr <- fmt.Errorf("streamer: chunk %d: %w", job.idx, err)
					return
				}
			}
			assembledTokens += part.Tokens
		}
	}()

	var throughput float64
	offset := prefixTokens
	fetchFailed := func(err error) (*tensor.KV, *FetchReport, error) {
		close(jobs)
		<-decodeErr // drain the worker
		return nil, nil, err
	}
	for si, info := range suffixInfos {
		i := fromChunk + si
		// An abandoned request (deadline hit, user gone) must stop issuing
		// chunk fetches, not stream the rest of the context to a caller
		// that will discard it.
		if err := ctx.Err(); err != nil {
			return fetchFailed(fmt.Errorf("streamer: cancelled before chunk %d: %w", i, err))
		}
		elapsed := time.Since(start)
		choice, err := f.Planner.Choose(si, elapsed, throughput, suffixInfos)
		if err != nil {
			return fetchFailed(fmt.Errorf("streamer: %w", err))
		}
		level := int(choice.Level)
		if choice.Text {
			level = storage.TextLevel
		}
		hash, err := man.ChunkHash(level, i)
		if err != nil {
			return fetchFailed(fmt.Errorf("streamer: %w", err))
		}
		reqStart := time.Now()
		payload, err := f.Source.GetChunkData(ctx, hash)
		if err != nil {
			return fetchFailed(fmt.Errorf("streamer: fetching chunk %d (%s): %w", i, choice, err))
		}
		dur := time.Since(reqStart)
		throughput = netsim.Throughput(int64(len(payload)), dur)
		report.Decisions = append(report.Decisions, ChunkDecision{
			Chunk: i, Choice: choice, Bytes: int64(len(payload)),
			Transfer: dur, Throughput: throughput,
		})
		report.BytesReceived += int64(len(payload))
		jobs <- decodeJob{idx: i, offset: offset, tokens: info.Tokens, choice: choice, payload: payload}
		offset += info.Tokens
	}
	close(jobs)
	if err := <-decodeErr; err != nil {
		return nil, nil, err
	}

	all := make([]*tensor.KV, 0, len(parts)+1)
	if prefix != nil {
		all = append(all, prefix)
	}
	all = append(all, parts...)
	kv, err := tensor.ConcatTokens(all...)
	if err != nil {
		return nil, nil, fmt.Errorf("streamer: reassembling: %w", err)
	}
	if kv.Tokens != meta.TokenCount {
		return nil, nil, fmt.Errorf("streamer: reassembled %d tokens, meta says %d", kv.Tokens, meta.TokenCount)
	}
	report.LoadTime = time.Since(start)
	return kv, report, nil
}

// decodeOne turns one fetched payload into a KV part. prev is the
// concatenation of all previously decoded parts (needed for text
// recompute), covering prevTokens tokens.
func (f *Fetcher) decodeOne(job decodeJob, prev *tensor.KV, prevTokens int) (*tensor.KV, error) {
	if job.choice.Text {
		tokens, err := llm.DecodeTokens(job.payload)
		if err != nil {
			return nil, err
		}
		if len(tokens) != job.tokens {
			return nil, fmt.Errorf("text payload has %d tokens, meta says %d", len(tokens), job.tokens)
		}
		return f.Model.ExtendKV(prev, prevTokens, tokens)
	}
	ch, err := f.Codec.DecodeChunk(job.payload)
	if err != nil {
		return nil, err
	}
	if ch.Index != job.idx || ch.TokenOffset != job.offset {
		return nil, fmt.Errorf("chunk metadata mismatch: got (%d,%d), want (%d,%d)",
			ch.Index, ch.TokenOffset, job.idx, job.offset)
	}
	if ch.KV.Tokens != job.tokens {
		return nil, fmt.Errorf("chunk has %d tokens, meta says %d", ch.KV.Tokens, job.tokens)
	}
	return ch.KV, nil
}
