package streamer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// ChunkSource is anything that can serve a context's manifest and chunk
// payloads: a transport.Client connected to one storage server, or a
// cluster.Pool fanning requests out across a consistent-hash ring of
// them. Payloads are addressed by content hash — the manifest is the
// only name→content indirection — so the adaptation logic is identical
// for a single node and a fleet.
type ChunkSource interface {
	// GetManifest fetches a context's manifest (hashes + metadata).
	GetManifest(ctx context.Context, contextID string) (storage.Manifest, error)
	// GetChunkData fetches one payload by content hash.
	GetChunkData(ctx context.Context, hash string) ([]byte, error)
}

// DefaultPipelineDepth is the transfer-pipeline depth used when a
// Fetcher does not set one: strictly sequential transfers, the classic
// one-chunk-ahead pipeline (decode of chunk i−1 overlaps the transfer of
// chunk i). Depths > 1 additionally overlap transfers with each other.
const DefaultPipelineDepth = 1

// Fetcher streams a context's KV cache from a live chunk source:
// chunk-by-chunk adaptive fetching, decoding pipelined with transmission
// (§6), and text-fallback recompute through the model. It produces the
// reassembled KV cache ready for generate_with_kv.
type Fetcher struct {
	// Source serves manifests and chunks (a transport.Client or a
	// cluster.Pool).
	Source ChunkSource
	// Codec decodes chunk bitstreams (its bank must match the model).
	Codec *core.Codec
	// Model recomputes text-mode chunks and anchors cost estimates.
	Model *llm.Model
	// Device is used for the planner's recompute estimates.
	Device llm.Device
	// Planner holds the adaptation policy.
	Planner Planner
	// Policy, when set, replaces Planner as the per-chunk decision
	// engine (sched.Plan is one). The Fetcher then annotates chunk
	// metadata with hashes and indices before planning, and honors the
	// policy's per-chunk Choice.Source routing: "ram" via Local, "disk"
	// via LocalStore, "peer" via Peers, anything else via Source. A
	// PathPolicy additionally decides between the streaming and
	// request/response paths.
	Policy Policy
	// Local is the gateway-local payload cache ("ram" source). When set,
	// every payload pulled over the network is written through it. Nil
	// disables the tier.
	Local PayloadCache
	// LocalStore is a colocated store replica readable without the
	// network ("disk" source). Nil disables the tier.
	LocalStore ChunkReader
	// Peers serves decoded KV from gateways holding the context resident
	// ("peer" source). Nil disables the tier.
	Peers PeerSource
	// Start, if set, anchors the planner's elapsed-time budget (and the
	// report's LoadTime) to an earlier instant than the Fetch call — a
	// serving gateway sets it to the request's admission time so queueing
	// delay burns SLO budget and the per-chunk choices degrade accordingly.
	Start time.Time
	// PipelineDepth caps how many chunk transfers may be in flight at
	// once (0 = DefaultPipelineDepth). At depth K, up to K transfers
	// overlap while completed chunks decode out of order (decode never
	// holds a transfer slot); planner decisions stay sequential — the
	// choice for chunk i uses the throughput measured from the most
	// recently completed transfer, which at depths > 1 may be an older
	// chunk than i−1. On the streaming path the depth bounds how many
	// completed chunks may queue ahead of the in-order finalizer before
	// backpressure pauses the sender.
	PipelineDepth int
	// DisableStreaming forces the per-chunk request/response path even
	// when Source supports the multiplexed server-push stream — the
	// chunk-granularity baseline, and the bit-for-bit reference the
	// harness checks the streamed KV against.
	DisableStreaming bool
	// FrameSize bounds the stream's DATA frames (0 = the transport
	// default, 64 KiB).
	FrameSize int
	// EstimatorWindow is the bandwidth estimator's frame window on the
	// streaming path (0 = netsim.DefaultEstimatorWindow).
	EstimatorWindow int
	// DecisionFrames is how many DATA frames arrive between adaptation
	// decision points (0 = DefaultDecisionFrames).
	DecisionFrames int
	// Chaos, when set, receives a CorruptFramesRejected tick for every
	// payload the fetch rejects on integrity grounds — the fleet-wide
	// tally survives even when the fetch itself fails, which the
	// per-request FetchReport does not.
	Chaos *metrics.ChaosCounters
	// BandwidthGauge, when set, receives the streaming path's live
	// bandwidth estimate (bits per second) as frames arrive — the
	// telemetry registry's view of netsim.Estimator. Nil is fine.
	BandwidthGauge *telemetry.Gauge
	// LanesGauge, when set, tracks coder-lane decodes in flight across
	// the fetch (cachegen_codec_decode_lanes_inflight): incremented as a
	// chunk's lanes are handed to the codec pool, decremented as they
	// finish — the waterfall's view of decode parallelism. Nil is fine.
	LanesGauge *telemetry.Gauge
}

// policy returns the decision engine for this fetch: the installed
// Policy, or the Planner.
func (f *Fetcher) policy() Policy {
	if f.Policy != nil {
		return f.Policy
	}
	return f.Planner
}

// annotateChunkInfos fills the delivery-identity fields a scheduling
// policy prices sources with: per-level content hashes, the text hash,
// the absolute index, and the raw KV size of each chunk.
func (f *Fetcher) annotateChunkInfos(man storage.Manifest, contextID string, infos []ChunkInfo) {
	layers, channels := f.Codec.Bank().Geometry()
	for i := range infos {
		infos[i].Context = contextID
		infos[i].Index = i
		hashes := make([]string, man.Meta.Levels)
		for lv := 0; lv < man.Meta.Levels; lv++ {
			if h, err := man.ChunkHash(lv, i); err == nil {
				hashes[lv] = h
			}
		}
		infos[i].HashByLevel = hashes
		if h, err := man.ChunkHash(storage.TextLevel, i); err == nil {
			infos[i].TextHash = h
		}
		// K and V planes, FP16.
		infos[i].KVBytes = int64(infos[i].Tokens*layers*channels) * 2 * 2
	}
}

// laneGaugeAdd moves the in-flight lane gauge by d (nil-safe).
func (f *Fetcher) laneGaugeAdd(d float64) {
	if f.LanesGauge != nil {
		f.LanesGauge.Add(d)
	}
}

// rejectCorrupt accounts one integrity rejection.
func (f *Fetcher) rejectCorrupt(report *FetchReport) {
	report.CorruptRejected++
	if f.Chaos != nil {
		f.Chaos.CorruptFramesRejected.Add(1)
	}
}

// FetchReport describes how a live fetch went.
type FetchReport struct {
	// LoadTime is the wall-clock time from request to the full KV cache
	// being assembled (TTFT minus the prompt prefill, which the caller
	// performs).
	LoadTime time.Duration
	// TransferTime, DecodeTime and RecomputeTime are an exclusive
	// wall-clock attribution of the load: every instant of the fetch is
	// charged to at most one component, sourced from the same phase
	// intervals the request tracer records as spans. DecodeTime is the
	// union of the decode intervals — chunks and their coder lanes
	// decode out of order and in parallel, so overlapped instants are
	// charged once; RecomputeTime is the recompute union minus any
	// decode overlap; TransferTime is the union of the transfer
	// intervals minus the instants compute was running — the network
	// time the pipeline could not hide. Their sum therefore never
	// exceeds LoadTime, at any pipeline depth or decode parallelism; the
	// remainder is idle/queue time. A fetch whose DecodeTime rivals its
	// TransferTime is compute-bound, not network-bound. Per-chunk raw
	// transfer durations (overlapping at depth > 1) live in
	// Decisions[].Transfer.
	TransferTime time.Duration
	// DecodeTime is the wall-clock time bitstream decode was running
	// (union, not sum, of the possibly-parallel decode intervals).
	DecodeTime time.Duration
	// RecomputeTime is the cumulative text-fallback recompute time.
	RecomputeTime time.Duration
	// Decisions records the per-chunk configuration choices (cold chunks
	// only; resident chunks are not fetched).
	Decisions []ChunkDecision
	// BytesReceived is the total payload size fetched, including bytes
	// of chunks later abandoned by a mid-stream cancel.
	BytesReceived int64
	// ResidentTokens is the prefix served from the caller's resident KV
	// instead of the network (FetchFrom); 0 for a cold fetch.
	ResidentTokens int
	// Streamed reports the multiplexed server-push path was used (frame-
	// granularity estimation and mid-stream steering); false means the
	// per-chunk request/response path.
	Streamed bool
	// Bandwidth is the live bandwidth estimate at the end of the fetch in
	// bits per second: the frame estimator's windowed harmonic mean on
	// the streaming path, the last completed transfer's average otherwise.
	Bandwidth float64
	// LevelBytes counts received payload bytes by delivered configuration
	// ("L0", "L1", …, "text"), cancel waste included.
	LevelBytes map[string]int64
	// Switches counts mid-stream level switches; Cancels counts in-flight
	// chunks abandoned and re-sent cheaper. Both are 0 on the
	// request/response path, which can only adapt at chunk boundaries.
	Switches, Cancels int
	// CorruptRejected counts payloads that failed integrity checks
	// (CRC/header validation) and were rejected rather than decoded. The
	// request/response path refetches such a chunk once before failing;
	// the streaming path fails the fetch, since the stream's frames are
	// already past.
	CorruptRejected int
}

// addLevelBytes accumulates one delivery's bytes into the per-level
// counters.
func (r *FetchReport) addLevelBytes(level string, n int64) {
	if r.LevelBytes == nil {
		r.LevelBytes = map[string]int64{}
	}
	r.LevelBytes[level] += n
}

// Fetch retrieves and reassembles the KV cache of contextID. Up to
// PipelineDepth chunk transfers run concurrently while completed chunks
// decode out of order — each chunk's coder lanes fanned across the
// codec's worker pool — directly into the preallocated destination
// tensor.
func (f *Fetcher) Fetch(ctx context.Context, contextID string) (*tensor.KV, *FetchReport, error) {
	return f.FetchFrom(ctx, contextID, nil)
}

// FetchFrom is Fetch for a caller that already holds an exact KV prefix
// of the context — a chat session resuming with the previous turns
// resident. Only the cold suffix chunks are fetched and decoded; the
// resident prefix is adopted as-is (whole chunks only: a prefix ending
// mid-chunk refetches that chunk). With the whole context resident, no
// chunk moves at all and the call costs one manifest round trip.
func (f *Fetcher) FetchFrom(ctx context.Context, contextID string, resident *tensor.KV) (*tensor.KV, *FetchReport, error) {
	if f.Source == nil || f.Codec == nil || f.Model == nil {
		return nil, nil, fmt.Errorf("streamer: Fetcher needs Source, Codec and Model")
	}
	start := time.Now()
	if !f.Start.IsZero() {
		start = f.Start
	}
	sp := telemetry.FromContext(ctx)
	manStart := time.Now()
	man, err := f.Source.GetManifest(ctx, contextID)
	if err != nil {
		return nil, nil, fmt.Errorf("streamer: fetching manifest: %w", err)
	}
	sp.Record("manifest", manStart, time.Since(manStart))
	meta := man.Meta
	infos, err := BuildChunkInfos(meta, f.Model.Config(), f.Device, 1)
	if err != nil {
		return nil, nil, fmt.Errorf("streamer: %w", err)
	}
	if f.Policy != nil {
		f.annotateChunkInfos(man, contextID, infos)
	}

	// Resolve how much of the resident prefix is usable: whole chunks.
	fromChunk, prefixTokens := 0, 0
	if resident != nil {
		if resident.Tokens > meta.TokenCount {
			return nil, nil, fmt.Errorf("streamer: resident cache has %d tokens, context %q has %d",
				resident.Tokens, contextID, meta.TokenCount)
		}
		for fromChunk < len(infos) && prefixTokens+infos[fromChunk].Tokens <= resident.Tokens {
			prefixTokens += infos[fromChunk].Tokens
			fromChunk++
		}
	}
	report := &FetchReport{ResidentTokens: prefixTokens}
	if fromChunk == len(infos) {
		// Fully resident (or a zero-chunk context): nothing to stream.
		var prefix *tensor.KV
		if prefixTokens > 0 {
			prefix, err = resident.SliceTokens(0, prefixTokens)
			if err != nil {
				return nil, nil, fmt.Errorf("streamer: %w", err)
			}
		}
		report.LoadTime = time.Since(start)
		return prefix, report, nil
	}
	suffixInfos := infos[fromChunk:]
	streamTokens := 0
	for _, info := range suffixInfos {
		streamTokens += info.Tokens
	}
	if prefixTokens+streamTokens != meta.TokenCount {
		return nil, nil, fmt.Errorf("streamer: chunk metadata covers %d tokens, meta says %d",
			prefixTokens+streamTokens, meta.TokenCount)
	}

	// The single destination: every chunk decodes (or recomputes)
	// directly into its token range — no per-chunk tensors, no
	// quadratic reassembly.
	layers, channels := f.Codec.Bank().Geometry()
	dest := tensor.New(layers, meta.TokenCount, channels)
	if prefixTokens > 0 {
		if err := dest.CopyTokensAt(0, resident, 0, prefixTokens); err != nil {
			return nil, nil, fmt.Errorf("streamer: adopting resident prefix: %w", err)
		}
	}

	// A path-aware policy is consulted before any transfer: it primes its
	// per-chunk source assignment from the annotated metadata and forces
	// the request/response path when it routed chunks at sources the
	// stream cannot serve (cache, colocated disk, peers).
	wantChunks := false
	if pp, ok := f.policy().(PathPolicy); ok {
		wantChunks = pp.PlanPath(suffixInfos) == PathChunks
	}

	// The multiplexed server-push path when the source speaks it: one
	// stream open, frame-fed bandwidth estimation, mid-chunk steering.
	if src, ok := f.Source.(StreamSource); ok && !f.DisableStreaming && !wantChunks {
		if err := f.fetchStreaming(ctx, src, start, man, suffixInfos, fromChunk, prefixTokens, dest, report); err != nil {
			return nil, nil, err
		}
		report.LoadTime = time.Since(start)
		return dest, report, nil
	}

	n := len(suffixInfos)
	depth := f.PipelineDepth
	if depth < 1 {
		depth = DefaultPipelineDepth
	}
	if depth > n {
		depth = n
	}

	// fctx cancels the pipeline as a whole: an error anywhere (decode
	// worker, transfer, planner) stops further transfers and unblocks
	// everyone; the deferred cancel reaps in-flight transfers on return.
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()

	decisions := make([]ChunkDecision, n)
	// offsets[si] is chunk si's destination token offset — precomputed so
	// out-of-order decode tasks know where their bytes land without any
	// running cursor. assembled[si] closes once chunk si has fully landed
	// in dest: bitstream chunks never wait on it, but a text chunk's
	// recompute resumes the model from the assembled prefix and so waits
	// on every predecessor.
	offsets := make([]int, n)
	for si, off := 0, prefixTokens; si < n; si++ {
		offsets[si] = off
		off += suffixInfos[si].Tokens
	}
	assembled := make([]chan struct{}, n)
	for i := range assembled {
		assembled[i] = make(chan struct{})
	}

	// Shared transfer bookkeeping. throughput/lastDone track the most
	// recently *completed* transfer — with overlapping transfers,
	// completions can land out of chunk order, and the planner wants the
	// freshest measurement. Phase intervals (and their trace spans) go
	// through the fetch timeline, which apply() reduces into the report.
	tl := &fetchTimeline{}
	var xfer struct {
		sync.Mutex
		throughput float64
		lastDone   time.Time
		bytes      int64
	}

	// Chunks decode out of order, so the first failure chronologically is
	// the real one: it cancels the fetch, and the context errors that
	// cancellation induces in the remaining tasks arrive later and are
	// dropped.
	var firstErr struct {
		sync.Mutex
		err error
	}
	fail := func(err error) {
		firstErr.Lock()
		if firstErr.err == nil {
			firstErr.err = err
			cancel()
		}
		firstErr.Unlock()
	}

	// finishChunk turns one completed transfer into assembled tokens. It
	// runs on the transfer's own goroutine after the transfer slot is
	// released, so chunk decodes overlap each other and later transfers;
	// within a chunk the codec fans the coder lanes across its worker
	// pool. Exactly one decode/recompute span per chunk is recorded.
	finishChunk := func(si int, payload []byte) {
		i := fromChunk + si
		choice := decisions[si].Choice
		if choice.Text {
			for j := 0; j < si; j++ {
				select {
				case <-assembled[j]:
				case <-fctx.Done():
					fail(fmt.Errorf("streamer: chunk %d: %w", i, fctx.Err()))
					return
				}
			}
		}
		dur, lanes, err := f.decodeInto(dest, offsets[si], i, suffixInfos[si].Tokens, choice, payload)
		if errors.Is(err, core.ErrCorruptChunk) {
			// A payload that fails its integrity checks is wire or
			// storage corruption, not a protocol failure: reject the
			// bytes and refetch the chunk once by its content hash.
			f.rejectCorrupt(report)
			if sp != nil {
				sp.Event("corrupt-reject", telemetry.Attr{Key: "chunk", Value: i})
			}
			level := int(choice.Level)
			if choice.Text {
				level = storage.TextLevel
			}
			if hash, herr := man.ChunkHash(level, i); herr == nil {
				if f.Local != nil {
					// The cached copy may be the corrupt one; never serve
					// it again.
					f.Local.Drop(hash)
				}
				refetchStart := time.Now()
				if payload, ferr := f.Source.GetChunkData(fctx, hash); ferr == nil {
					// The refetch is transfer time and payload bytes like
					// any other: it must not vanish from the attribution.
					var attrs []telemetry.Attr
					if sp != nil {
						attrs = []telemetry.Attr{{Key: "chunk", Value: i}, {Key: "refetch", Value: true}, {Key: "bytes", Value: len(payload)}}
					}
					tl.add(sp, phaseTransfer, "transfer", refetchStart, time.Now(), attrs)
					xfer.Lock()
					xfer.bytes += int64(len(payload))
					xfer.Unlock()
					dur, lanes, err = f.decodeInto(dest, offsets[si], i, suffixInfos[si].Tokens, choice, payload)
				}
			}
		}
		if err != nil {
			fail(fmt.Errorf("streamer: chunk %d: %w", i, err))
			return
		}
		decisions[si].Compute = dur
		kind, name := phaseDecode, "decode"
		if choice.Text {
			kind, name = phaseRecompute, "recompute"
		}
		decodeEnd := time.Now()
		var attrs []telemetry.Attr
		if sp != nil {
			attrs = []telemetry.Attr{{Key: "chunk", Value: i}, {Key: "level", Value: choice.String()}}
			if !choice.Text {
				attrs = append(attrs, telemetry.Attr{Key: "lanes", Value: lanes})
			}
		}
		tl.add(sp, kind, name, decodeEnd.Add(-dur), decodeEnd, attrs)
		close(assembled[si])
	}

	// Issue loop: sequential planner decisions, up to `depth` transfers
	// in flight. The slot is released the moment the wire is done — the
	// decode rides the same goroutine but does not hold up later
	// transfers.
	var wg sync.WaitGroup
	inflight := make(chan struct{}, depth)
	issue := func(si int) error {
		select {
		case inflight <- struct{}{}:
		case <-fctx.Done():
			return fmt.Errorf("streamer: cancelled before chunk %d: %w", fromChunk+si, fctx.Err())
		}
		if err := fctx.Err(); err != nil {
			// An abandoned request (deadline hit, user gone) or a failed
			// earlier chunk must stop issuing transfers, not stream the
			// rest of the context to a caller that will discard it.
			<-inflight
			return fmt.Errorf("streamer: cancelled before chunk %d: %w", fromChunk+si, err)
		}
		i := fromChunk + si
		xfer.Lock()
		tp := xfer.throughput
		xfer.Unlock()
		elapsed := time.Since(start)
		choice, err := f.policy().Choose(si, elapsed, tp, suffixInfos)
		if err != nil {
			<-inflight
			return fmt.Errorf("streamer: %w", err)
		}
		level := int(choice.Level)
		if choice.Text {
			level = storage.TextLevel
		}
		hash, err := man.ChunkHash(level, i)
		if err != nil {
			<-inflight
			return fmt.Errorf("streamer: %w", err)
		}
		decisions[si].Chunk = i
		decisions[si].Choice = choice
		decisions[si].Source = sourceLabel(choice)
		if sp != nil {
			sp.Event("plan", telemetry.Attr{Key: "chunk", Value: i}, telemetry.Attr{Key: "level", Value: choice.String()},
				telemetry.Attr{Key: "source", Value: decisions[si].Source})
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqStart := time.Now()
			if choice.Source == SourcePeer && f.Peers != nil {
				part, lvl, perr := f.Peers.FetchResident(fctx, contextID, i)
				if perr == nil {
					<-inflight
					done := time.Now()
					if part.Tokens != suffixInfos[si].Tokens {
						fail(fmt.Errorf("streamer: chunk %d: peer served %d tokens, meta says %d",
							i, part.Tokens, suffixInfos[si].Tokens))
						return
					}
					if err := dest.CopyTokensAt(offsets[si], part, 0, part.Tokens); err != nil {
						fail(fmt.Errorf("streamer: chunk %d: adopting peer KV: %w", i, err))
						return
					}
					// The decision records what actually moved: the peer's
					// resident quality (its original decode level) and the
					// raw KV bytes of the transfer.
					dc := levelChoice(lvl)
					dc.Source = SourcePeer
					bytes := part.SizeBytesFP16()
					decisions[si].Choice = dc
					decisions[si].Bytes = bytes
					decisions[si].Transfer = done.Sub(reqStart)
					var attrs []telemetry.Attr
					if sp != nil {
						attrs = []telemetry.Attr{{Key: "chunk", Value: i}, {Key: "source", Value: SourcePeer}, {Key: "bytes", Value: bytes}}
					}
					tl.add(sp, phaseTransfer, "transfer", reqStart, done, attrs)
					xfer.Lock()
					xfer.bytes += bytes
					xfer.Unlock()
					close(assembled[si])
					return
				}
				// No peer holds the chunk anymore: fall through to the
				// fleet at the planned level.
			}
			payload, from, err := f.fetchPayload(fctx, hash, choice)
			<-inflight
			if err != nil {
				fail(fmt.Errorf("streamer: fetching chunk %d (%s): %w", i, choice, err))
				return
			}
			decisions[si].Source = from
			done := time.Now()
			dur := done.Sub(reqStart)
			tp := netsim.Throughput(int64(len(payload)), dur)
			decisions[si].Bytes = int64(len(payload))
			decisions[si].Transfer = dur
			decisions[si].Throughput = tp
			var attrs []telemetry.Attr
			if sp != nil {
				attrs = []telemetry.Attr{{Key: "chunk", Value: i}, {Key: "level", Value: choice.String()}, {Key: "bytes", Value: len(payload)}}
			}
			tl.add(sp, phaseTransfer, "transfer", reqStart, done, attrs)
			xfer.Lock()
			if fromNetwork(from) && done.After(xfer.lastDone) {
				// Cache and colocated-disk reads say nothing about the
				// fleet link; only network deliveries feed the estimate.
				xfer.lastDone = done
				xfer.throughput = tp
			}
			xfer.bytes += int64(len(payload))
			xfer.Unlock()
			finishChunk(si, payload)
		}()
		return nil
	}
	for si := range suffixInfos {
		if err := issue(si); err != nil {
			fail(err)
			break
		}
	}
	wg.Wait()
	firstErr.Lock()
	err = firstErr.err
	firstErr.Unlock()
	if err != nil {
		return nil, nil, err
	}

	tl.apply(report)
	report.BytesReceived = xfer.bytes
	report.Decisions = decisions
	for _, d := range decisions {
		report.addLevelBytes(d.Choice.String(), d.Bytes)
	}
	xfer.Lock()
	report.Bandwidth = xfer.throughput
	xfer.Unlock()
	report.LoadTime = time.Since(start)
	return dest, report, nil
}

// fetchPayload delivers one chunk payload honoring the choice's source
// routing. RAM and disk misses (or failures) fall back to the fleet, so
// a stale plan degrades to a network fetch instead of failing. Every
// payload pulled over the network (or read off the colocated disk) is
// written through the local cache. Returns the payload and the source
// class that actually served it.
func (f *Fetcher) fetchPayload(ctx context.Context, hash string, choice Choice) ([]byte, string, error) {
	switch choice.Source {
	case SourceRAM:
		if f.Local != nil {
			if data, ok := f.Local.Get(hash); ok {
				return data, SourceRAM, nil
			}
		}
	case SourceDisk:
		if f.LocalStore != nil {
			if data, err := f.LocalStore.GetChunkData(ctx, hash); err == nil {
				if f.Local != nil {
					f.Local.Put(hash, data)
				}
				return data, SourceDisk, nil
			}
		}
	}
	data, err := f.Source.GetChunkData(ctx, hash)
	if err != nil {
		return nil, "", err
	}
	if f.Local != nil {
		f.Local.Put(hash, data)
	}
	from := sourceLabel(choice)
	if !fromNetwork(from) {
		// A routed local source fell back to the fleet: label the truth.
		from = SourceRemote
		if choice.Text {
			from = SourceRecompute
		}
	}
	return data, from, nil
}

// fromNetwork reports whether a source class moved bytes over the fleet
// link (and so informs the bandwidth estimate).
func fromNetwork(source string) bool {
	switch source {
	case SourceRAM, SourceDisk, SourcePeer:
		return false
	}
	return true
}

// decodeInto turns one fetched payload into dest's token range
// [offset, offset+tokens), returning the decode/recompute duration and
// how many coder lanes the container carried (0 on the text path). The
// lane count is reflected in LanesGauge for the duration of the decode.
func (f *Fetcher) decodeInto(dest *tensor.KV, offset, idx, tokens int, choice Choice, payload []byte) (time.Duration, int, error) {
	begin := time.Now()
	if choice.Text {
		toks, err := llm.DecodeTokens(payload)
		if err != nil {
			// A text payload that does not parse is corrupt in transit or
			// at rest; classify it so callers can refetch.
			return 0, 0, fmt.Errorf("%w: text payload: %v", core.ErrCorruptChunk, err)
		}
		if len(toks) != tokens {
			return 0, 0, fmt.Errorf("%w: text payload has %d tokens, meta says %d", core.ErrCorruptChunk, len(toks), tokens)
		}
		// The assembled prefix lives in dest's first `offset` tokens;
		// ExtendKV resumes the model state from there.
		part, err := f.Model.ExtendKV(dest, offset, toks)
		if err != nil {
			return 0, 0, err
		}
		if err := dest.CopyTokensAt(offset, part, 0, part.Tokens); err != nil {
			return 0, 0, err
		}
		return time.Since(begin), 0, nil
	}
	p, err := f.Codec.ParseChunk(payload)
	if err != nil {
		return 0, 0, err
	}
	hdr := p.Header
	if hdr.Index != idx || hdr.TokenOffset != offset {
		return 0, 0, fmt.Errorf("chunk metadata mismatch: got (%d,%d), want (%d,%d)",
			hdr.Index, hdr.TokenOffset, idx, offset)
	}
	if hdr.Tokens != tokens {
		return 0, 0, fmt.Errorf("chunk has %d tokens, meta says %d", hdr.Tokens, tokens)
	}
	lanes := p.Lanes()
	f.laneGaugeAdd(float64(lanes))
	defer f.laneGaugeAdd(-float64(lanes))
	if err := f.Codec.DecodeParsedInto(dest, offset, p, payload); err != nil {
		return 0, lanes, err
	}
	return time.Since(begin), lanes, nil
}
