package streamer

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// Incremental fetching — the live side of the SVC-style extension
// (DESIGN.md §5b, paper §9): fetch every chunk at the coarsest level
// first so generation can start as early as possible, then upgrade the
// resident cache in place by fetching refinement bitstreams.

// IncrementalFetch is the two-phase result of FetchIncremental.
type IncrementalFetch struct {
	// Base is the immediately usable KV cache, decoded at the coarsest
	// encoding level.
	Base *tensor.KV
	// BaseReport describes the base phase (its LoadTime is the
	// time-to-first-usable-cache).
	BaseReport *FetchReport

	fetcher   *Fetcher
	contextID string
	manifest  storage.Manifest
	target    core.Level
	chunks    []*core.Chunk
}

// Upgrade fetches the refinement streams and returns the cache upgraded
// to the target level's quality. It can run after generation has already
// started from Base.
func (inc *IncrementalFetch) Upgrade(ctx context.Context) (*tensor.KV, *FetchReport, error) {
	start := time.Now()
	report := &FetchReport{}
	parts := make([]*tensor.KV, len(inc.chunks))
	for i, base := range inc.chunks {
		hash, err := inc.manifest.ChunkHash(storage.RefineLevelKey(int(inc.target)), i)
		if err != nil {
			return nil, nil, fmt.Errorf("streamer: %w", err)
		}
		reqStart := time.Now()
		payload, err := inc.fetcher.Source.GetChunkData(ctx, hash)
		if err != nil {
			return nil, nil, fmt.Errorf("streamer: fetching refinement chunk %d: %w", i, err)
		}
		dur := time.Since(reqStart)
		up, err := inc.fetcher.Codec.ApplyRefinement(base, payload)
		if err != nil {
			return nil, nil, fmt.Errorf("streamer: applying refinement chunk %d: %w", i, err)
		}
		parts[i] = up.KV
		report.Decisions = append(report.Decisions, ChunkDecision{
			Chunk: i, Choice: Choice{Level: inc.target}, Bytes: int64(len(payload)), Transfer: dur,
		})
		report.BytesReceived += int64(len(payload))
	}
	kv, err := tensor.ConcatTokens(parts...)
	if err != nil {
		return nil, nil, fmt.Errorf("streamer: reassembling upgraded cache: %w", err)
	}
	report.LoadTime = time.Since(start)
	return kv, report, nil
}

// FetchIncremental retrieves a context in two phases: the coarsest-level
// bitstreams now (smallest, fastest first token) and, via the returned
// handle, refinement streams that upgrade the cache to `target`. The
// context must have been published with the matching refinement target
// (PublishOptions.RefineTargets).
func (f *Fetcher) FetchIncremental(ctx context.Context, contextID string, target core.Level) (*IncrementalFetch, error) {
	if f.Source == nil || f.Codec == nil {
		return nil, fmt.Errorf("streamer: Fetcher needs Source and Codec")
	}
	start := time.Now()
	man, err := f.Source.GetManifest(ctx, contextID)
	if err != nil {
		return nil, fmt.Errorf("streamer: fetching manifest: %w", err)
	}
	meta := man.Meta
	available := false
	for _, t := range meta.RefineTargets {
		if t == int(target) {
			available = true
			break
		}
	}
	if !available {
		return nil, fmt.Errorf("streamer: context %q has no refinement streams for level %d (published targets: %v)",
			contextID, target, meta.RefineTargets)
	}
	coarsest := meta.Levels - 1

	report := &FetchReport{}
	chunks := make([]*core.Chunk, meta.NumChunks())
	parts := make([]*tensor.KV, meta.NumChunks())
	offset := 0
	for i := 0; i < meta.NumChunks(); i++ {
		hash, err := man.ChunkHash(coarsest, i)
		if err != nil {
			return nil, fmt.Errorf("streamer: %w", err)
		}
		reqStart := time.Now()
		payload, err := f.Source.GetChunkData(ctx, hash)
		if err != nil {
			return nil, fmt.Errorf("streamer: fetching base chunk %d: %w", i, err)
		}
		dur := time.Since(reqStart)
		ch, err := f.Codec.DecodeChunk(payload)
		if err != nil {
			return nil, fmt.Errorf("streamer: decoding base chunk %d: %w", i, err)
		}
		if ch.Index != i || ch.TokenOffset != offset || ch.KV.Tokens != meta.ChunkTokens[i] {
			return nil, fmt.Errorf("streamer: base chunk %d metadata mismatch", i)
		}
		chunks[i] = ch
		parts[i] = ch.KV
		offset += ch.KV.Tokens
		report.Decisions = append(report.Decisions, ChunkDecision{
			Chunk: i, Choice: Choice{Level: core.Level(coarsest)}, Bytes: int64(len(payload)), Transfer: dur,
		})
		report.BytesReceived += int64(len(payload))
	}
	base, err := tensor.ConcatTokens(parts...)
	if err != nil {
		return nil, fmt.Errorf("streamer: reassembling base cache: %w", err)
	}
	report.LoadTime = time.Since(start)
	return &IncrementalFetch{
		Base:       base,
		BaseReport: report,
		fetcher:    f,
		contextID:  contextID,
		manifest:   man,
		target:     target,
		chunks:     chunks,
	}, nil
}
