package streamer

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/storage"
)

// incStack publishes a context with refinement targets and returns the
// stack plus the published manifest.
func incStack(t *testing.T, targets []core.Level) (*testStack, storage.Manifest) {
	t.Helper()
	s := newStack(t)
	man, _, err := Publish(context.Background(), s.store, s.codec, s.model, "inc-1", s.tokens,
		PublishOptions{KV: s.kv, RefineTargets: targets})
	if err != nil {
		t.Fatal(err)
	}
	return s, man
}

func TestPublishWithRefinements(t *testing.T) {
	s, man := incStack(t, []core.Level{0, 1})
	meta := man.Meta
	if len(meta.RefineTargets) != 2 || meta.RefineTargets[0] != 0 || meta.RefineTargets[1] != 1 {
		t.Fatalf("RefineTargets = %v", meta.RefineTargets)
	}
	ctx := context.Background()
	for ti, target := range meta.RefineTargets {
		for c := 0; c < meta.NumChunks(); c++ {
			hash, err := man.ChunkHash(storage.RefineLevelKey(target), c)
			if err != nil {
				t.Fatal(err)
			}
			data, err := s.store.GetChunk(ctx, hash)
			if err != nil {
				t.Fatalf("refinement chunk %d target L%d missing: %v", c, target, err)
			}
			if int64(len(data)) != meta.RefineBytes[ti][c] {
				t.Errorf("refinement size mismatch: %d vs meta %d", len(data), meta.RefineBytes[ti][c])
			}
		}
	}
	// Refinements count toward the storage footprint.
	if meta.TotalBytes() <= metaWithoutRefinements(meta).TotalBytes() {
		t.Error("refinement bytes not accounted in TotalBytes")
	}
}

func metaWithoutRefinements(m storage.ContextMeta) storage.ContextMeta {
	m.RefineTargets = nil
	m.RefineBytes = nil
	return m
}

func TestPublishRejectsBadRefineTargets(t *testing.T) {
	s := newStack(t)
	coarsest := core.Level(s.codec.Config().Levels() - 1)
	for _, target := range []core.Level{coarsest, coarsest + 1, -1} {
		_, _, err := Publish(context.Background(), s.store, s.codec, s.model, "bad", s.tokens,
			PublishOptions{KV: s.kv, RefineTargets: []core.Level{target}})
		if err == nil {
			t.Errorf("accepted refinement target %d", target)
		}
	}
}

func TestFetchIncremental(t *testing.T) {
	s, man := incStack(t, []core.Level{0})
	meta := man.Meta
	f := &Fetcher{
		Source:  s.client,
		Codec:   s.codec,
		Model:   s.model,
		Device:  llm.A40x4(),
		Planner: Planner{Adapt: false, DefaultLevel: 0},
	}
	ctx := context.Background()
	inc, err := f.FetchIncremental(ctx, "inc-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Base.Tokens != len(s.tokens) {
		t.Fatalf("base covers %d tokens", inc.Base.Tokens)
	}

	// The base phase must move fewer bytes than a direct finest-level
	// fetch would (that is the whole point of starting coarse).
	var finest, coarsest int64
	for c := 0; c < meta.NumChunks(); c++ {
		finest += meta.SizesBytes[0][c]
		coarsest += meta.SizesBytes[meta.Levels-1][c]
	}
	if inc.BaseReport.BytesReceived != coarsest {
		t.Errorf("base phase moved %d bytes, want coarsest total %d", inc.BaseReport.BytesReceived, coarsest)
	}
	if coarsest >= finest {
		t.Fatalf("coarsest level (%d B) not smaller than finest (%d B)", coarsest, finest)
	}

	// Base is usable but lossier than the upgrade.
	qp := llm.DefaultQualityParams()
	baseErr, err := s.model.KVError(s.kv, inc.Base, qp)
	if err != nil {
		t.Fatal(err)
	}
	up, upReport, err := inc.Upgrade(ctx)
	if err != nil {
		t.Fatal(err)
	}
	upErr, err := s.model.KVError(s.kv, up, qp)
	if err != nil {
		t.Fatal(err)
	}
	if upErr >= baseErr {
		t.Errorf("upgrade did not improve error: base %.4f -> %.4f", baseErr, upErr)
	}
	if upReport.BytesReceived <= 0 || up.Tokens != len(s.tokens) {
		t.Errorf("upgrade report %+v, tokens %d", upReport, up.Tokens)
	}

	// The upgraded cache matches a direct fetch at the target level.
	direct := &Fetcher{
		Source:  s.client,
		Codec:   s.codec,
		Model:   s.model,
		Device:  llm.A40x4(),
		Planner: Planner{Adapt: false, DefaultLevel: 0},
	}
	directKV, _, err := direct.Fetch(ctx, "inc-1")
	if err != nil {
		t.Fatal(err)
	}
	directErr, err := s.model.KVError(s.kv, directKV, qp)
	if err != nil {
		t.Fatal(err)
	}
	if upErr > directErr*1.3+0.02 {
		t.Errorf("upgraded error %.4f far above direct level-0 error %.4f", upErr, directErr)
	}
}

func TestFetchIncrementalValidation(t *testing.T) {
	s, _ := incStack(t, []core.Level{1})
	f := &Fetcher{
		Source:  s.client,
		Codec:   s.codec,
		Model:   s.model,
		Device:  llm.A40x4(),
		Planner: Planner{Adapt: false, DefaultLevel: 0},
	}
	ctx := context.Background()
	// Unpublished target.
	if _, err := f.FetchIncremental(ctx, "inc-1", 0); err == nil {
		t.Error("accepted unpublished refinement target")
	}
	// Missing context.
	if _, err := f.FetchIncremental(ctx, "missing", 1); err == nil {
		t.Error("accepted missing context")
	}
	// Misconfigured fetcher.
	bad := &Fetcher{Source: s.client}
	if _, err := bad.FetchIncremental(ctx, "inc-1", 1); err == nil {
		t.Error("accepted fetcher without codec")
	}
}
