package streamer

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// testStack builds a small end-to-end stack: model, trained codec, a
// store with one published context, and a transport server over TCP.
type testStack struct {
	model  *llm.Model
	codec  *core.Codec
	store  *storage.MemStore
	tokens []llm.Token
	kv     *tensor.KV
	man    storage.Manifest
	meta   storage.ContextMeta
	client *transport.Client
}

func newStack(t *testing.T) *testStack {
	t.Helper()
	model, err := llm.New(llm.Config{
		Name: "itest", Layers: 6, KVChannels: 16, Channels: 16,
		Hidden: 128, Params: 1e8, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ChunkTokens = 80

	rng := rand.New(rand.NewSource(42))
	sample := make([]llm.Token, 400)
	for i := range sample {
		sample[i] = llm.Token(rng.Intn(llm.VocabSize))
	}
	bank, err := core.Train(cfg, []*tensor.KV{model.CalculateKV(sample)})
	if err != nil {
		t.Fatal(err)
	}
	codec := core.NewCodec(bank)

	tokens := make([]llm.Token, 250)
	for i := range tokens {
		tokens[i] = llm.Token(rng.Intn(llm.VocabSize))
	}
	kv := model.CalculateKV(tokens)

	store := storage.NewMemStore()
	man, _, err := Publish(context.Background(), store, codec, model, "ctx-1", tokens, PublishOptions{KV: kv})
	if err != nil {
		t.Fatal(err)
	}

	srv := transport.NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	client, err := transport.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	return &testStack{model: model, codec: codec, store: store, tokens: tokens, kv: kv, man: man, meta: man.Meta, client: client}
}

func TestPublishStoresAllArtifacts(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()
	if s.meta.NumChunks() != 4 { // 250 tokens / 80 per chunk
		t.Fatalf("published %d chunks, want 4", s.meta.NumChunks())
	}
	for c := 0; c < s.meta.NumChunks(); c++ {
		for lv := 0; lv < s.meta.Levels; lv++ {
			hash, err := s.man.ChunkHash(lv, c)
			if err != nil {
				t.Fatal(err)
			}
			data, err := s.store.GetChunk(ctx, hash)
			if err != nil {
				t.Fatalf("chunk %d level %d missing: %v", c, lv, err)
			}
			if storage.HashChunk(data) != hash {
				t.Errorf("chunk %d level %d stored under wrong content address", c, lv)
			}
			if int64(len(data)) != s.meta.SizesBytes[lv][c] {
				t.Errorf("chunk %d level %d size %d != meta %d", c, lv, len(data), s.meta.SizesBytes[lv][c])
			}
		}
		hash, err := s.man.ChunkHash(storage.TextLevel, c)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.store.GetChunk(ctx, hash); err != nil {
			t.Errorf("text chunk %d missing: %v", c, err)
		}
	}
	// Higher levels must be smaller overall.
	for lv := 1; lv < s.meta.Levels; lv++ {
		var prev, cur int64
		for c := 0; c < s.meta.NumChunks(); c++ {
			prev += s.meta.SizesBytes[lv-1][c]
			cur += s.meta.SizesBytes[lv][c]
		}
		if cur >= prev {
			t.Errorf("level %d total %d not below level %d total %d", lv, cur, lv-1, prev)
		}
	}
}

func TestPublishValidation(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()
	if _, _, err := Publish(ctx, s.store, s.codec, s.model, "empty", nil, PublishOptions{}); err == nil {
		t.Error("published empty context")
	}
	short, _ := s.kv.SliceTokens(0, 10)
	if _, _, err := Publish(ctx, s.store, s.codec, s.model, "bad", s.tokens, PublishOptions{KV: short}); err == nil {
		t.Error("published mismatched KV")
	}
}

func TestPublishSizeScale(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()
	man, _, err := Publish(ctx, s.store, s.codec, s.model, "scaled", s.tokens, PublishOptions{KV: s.kv, SizeScale: 16})
	if err != nil {
		t.Fatal(err)
	}
	meta := man.Meta
	for c := 0; c < meta.NumChunks(); c++ {
		hash, err := man.ChunkHash(0, c)
		if err != nil {
			t.Fatal(err)
		}
		real, err := s.store.GetChunk(ctx, hash)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(len(real)) * 16
		if diff := meta.SizesBytes[0][c] - want; diff < -16 || diff > 16 {
			t.Errorf("chunk %d scaled size %d, want ≈%d", c, meta.SizesBytes[0][c], want)
		}
		if meta.TextBytes[c] > int64(len(s.tokens))*4 {
			t.Errorf("text size must not scale: %d", meta.TextBytes[c])
		}
	}
}

func TestFetchEndToEnd(t *testing.T) {
	s := newStack(t)
	f := &Fetcher{
		Source:  s.client,
		Codec:   s.codec,
		Model:   s.model,
		Device:  llm.A40x4(),
		Planner: Planner{Adapt: false, DefaultLevel: 0},
	}
	kv, report, err := f.Fetch(context.Background(), "ctx-1")
	if err != nil {
		t.Fatal(err)
	}
	if kv.Tokens != len(s.tokens) {
		t.Fatalf("fetched %d tokens, want %d", kv.Tokens, len(s.tokens))
	}
	if len(report.Decisions) != s.meta.NumChunks() {
		t.Errorf("report has %d decisions", len(report.Decisions))
	}
	if report.LoadTime <= 0 || report.BytesReceived <= 0 {
		t.Errorf("report: %+v", report)
	}

	// The fetched cache must be close to the exact one (level-0 loss only)
	// and good enough to answer with high quality.
	res, err := s.model.GenerateWithKV(s.tokens, kv, "What was the first topic?", llm.DefaultQualityParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality < 0.95 {
		t.Errorf("fetched cache quality %.3f, want ≥0.95", res.Quality)
	}
}

func TestFetchTextFallbackIsLossless(t *testing.T) {
	s := newStack(t)
	// A planner that always picks text: set an SLO so generous that text
	// always fits (recompute estimates are microseconds at this scale).
	f := &Fetcher{
		Source: s.client,
		Codec:  s.codec,
		Model:  s.model,
		Device: llm.A40x4(),
		Planner: Planner{
			Adapt: true, SLO: time.Hour, DefaultLevel: 1,
			PriorBandwidth: 1e9,
		},
	}
	kv, report, err := f.Fetch(context.Background(), "ctx-1")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range report.Decisions {
		if !d.Choice.Text {
			t.Fatalf("expected all-text decisions, got %+v", report.Decisions)
		}
	}
	// Text recompute is exact: the result must equal the original cache.
	diff, err := s.kv.MaxAbsDiff(kv)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("text-recomputed cache differs by %v", diff)
	}
}

func TestFetchMixedLevelsStillAssembles(t *testing.T) {
	s := newStack(t)
	// Tight SLO with a slow prior forces lower levels after chunk one.
	f := &Fetcher{
		Source: s.client,
		Codec:  s.codec,
		Model:  s.model,
		Device: llm.A40x4(),
		Planner: Planner{
			Adapt: true, SLO: 50 * time.Millisecond, DefaultLevel: 1,
		},
	}
	kv, _, err := f.Fetch(context.Background(), "ctx-1")
	if err != nil {
		t.Fatal(err)
	}
	if kv.Tokens != len(s.tokens) {
		t.Errorf("assembled %d tokens", kv.Tokens)
	}
}

func TestFetchMissingContext(t *testing.T) {
	s := newStack(t)
	f := &Fetcher{
		Source:  s.client,
		Codec:   s.codec,
		Model:   s.model,
		Device:  llm.A40x4(),
		Planner: Planner{Adapt: false, DefaultLevel: 0},
	}
	if _, _, err := f.Fetch(context.Background(), "missing"); err == nil {
		t.Error("fetching a missing context succeeded")
	}
}

func TestFetchCancelledContext(t *testing.T) {
	s := newStack(t)
	f := &Fetcher{
		Source:  s.client,
		Codec:   s.codec,
		Model:   s.model,
		Device:  llm.A40x4(),
		Planner: Planner{Adapt: false, DefaultLevel: 0},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := f.Fetch(ctx, "ctx-1"); err == nil {
		t.Error("fetch with cancelled context succeeded")
	}
}

func TestFetchMisconfigured(t *testing.T) {
	s := newStack(t)
	f := &Fetcher{Source: s.client} // missing codec/model
	if _, _, err := f.Fetch(context.Background(), "ctx-1"); err == nil {
		t.Error("misconfigured fetcher succeeded")
	}
}

func TestFetchOverShapedLink(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	s := newStack(t)
	// Serve the same store over a heavily shaped link; the fetch must
	// still succeed and take measurably longer.
	srv := transport.NewServer(s.store, transport.WithEgressRate(8e6)) // 1 MB/s
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	client, err := transport.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	f := &Fetcher{
		Source:  client,
		Codec:   s.codec,
		Model:   s.model,
		Device:  llm.A40x4(),
		Planner: Planner{Adapt: false, DefaultLevel: 3}, // smallest level
	}
	start := time.Now()
	kv, report, err := f.Fetch(context.Background(), "ctx-1")
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if kv.Tokens != len(s.tokens) {
		t.Errorf("assembled %d tokens", kv.Tokens)
	}
	wantMin := time.Duration(float64(report.BytesReceived) / 1e6 * 0.5 * float64(time.Second))
	if elapsed < wantMin {
		t.Errorf("shaped fetch took %v for %d bytes, expected ≥%v", elapsed, report.BytesReceived, wantMin)
	}
}
