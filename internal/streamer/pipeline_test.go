package streamer

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// gatedSource wraps a ChunkSource, counting concurrent GetChunkData calls
// and optionally holding each transfer open until `hold` elapses so
// overlap is observable.
type gatedSource struct {
	inner ChunkSource
	hold  time.Duration

	mu      sync.Mutex
	current int
	max     int
	calls   int
}

func (g *gatedSource) GetManifest(ctx context.Context, id string) (storage.Manifest, error) {
	return g.inner.GetManifest(ctx, id)
}

func (g *gatedSource) GetChunkData(ctx context.Context, hash string) ([]byte, error) {
	g.mu.Lock()
	g.current++
	g.calls++
	if g.current > g.max {
		g.max = g.current
	}
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.current--
		g.mu.Unlock()
	}()
	if g.hold > 0 {
		select {
		case <-time.After(g.hold):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.inner.GetChunkData(ctx, hash)
}

func (g *gatedSource) maxInFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// TestPipelineDepthOverlapsTransfers: at depth K ≥ 2 the fetcher must
// hold ≥ 2 chunk transfers in flight concurrently; at depth 1 it must
// stay strictly sequential.
func TestPipelineDepthOverlapsTransfers(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()
	for _, tc := range []struct {
		depth   int
		wantMin int
		wantMax int
	}{
		{depth: 1, wantMin: 1, wantMax: 1},
		{depth: 3, wantMin: 2, wantMax: 3},
	} {
		src := &gatedSource{inner: s.client, hold: 30 * time.Millisecond}
		f := &Fetcher{
			Source: src, Codec: s.codec, Model: s.model, Device: llm.A40x4(),
			Planner:       Planner{Adapt: false, DefaultLevel: 1},
			PipelineDepth: tc.depth,
		}
		kv, rep, err := f.Fetch(ctx, "ctx-1")
		if err != nil {
			t.Fatalf("depth %d: %v", tc.depth, err)
		}
		if d, err := kv.MaxAbsDiff(mustDecodeReference(t, s)); err != nil || d != 0 {
			t.Fatalf("depth %d: pipelined fetch differs from reference decode (diff %v, err %v)", tc.depth, d, err)
		}
		got := src.maxInFlight()
		if got < tc.wantMin || got > tc.wantMax {
			t.Errorf("depth %d: max in-flight transfers = %d, want in [%d,%d]", tc.depth, got, tc.wantMin, tc.wantMax)
		}
		if len(rep.Decisions) != s.meta.NumChunks() {
			t.Errorf("depth %d: %d decisions, want %d", tc.depth, len(rep.Decisions), s.meta.NumChunks())
		}
		for i, d := range rep.Decisions {
			if d.Chunk != i || d.Bytes <= 0 || d.Transfer <= 0 {
				t.Errorf("depth %d: decision %d incomplete: %+v", tc.depth, i, d)
			}
		}
		if rep.TransferTime <= 0 || rep.DecodeTime <= 0 {
			t.Errorf("depth %d: missing load breakdown: transfer %v decode %v", tc.depth, rep.TransferTime, rep.DecodeTime)
		}
		if rep.RecomputeTime != 0 {
			t.Errorf("depth %d: unexpected recompute time %v for an all-bitstream fetch", tc.depth, rep.RecomputeTime)
		}
	}
}

// mustDecodeReference decodes the context directly from the store.
func mustDecodeReference(t *testing.T, s *testStack) *tensor.KV {
	t.Helper()
	chunks := make([][]byte, s.meta.NumChunks())
	for i := range chunks {
		hash, err := s.man.ChunkHash(1, i)
		if err != nil {
			t.Fatal(err)
		}
		data, err := s.store.GetChunk(context.Background(), hash)
		if err != nil {
			t.Fatal(err)
		}
		chunks[i] = data
	}
	kv, err := s.codec.DecodeContext(chunks)
	if err != nil {
		t.Fatal(err)
	}
	return kv
}

// TestFetchCancelStopsPipeline: cancelling mid-fetch must stop issuing
// transfers and return promptly at any pipeline depth.
func TestFetchCancelStopsPipeline(t *testing.T) {
	s := newStack(t)
	src := &gatedSource{inner: s.client, hold: 50 * time.Millisecond}
	f := &Fetcher{
		Source: src, Codec: s.codec, Model: s.model, Device: llm.A40x4(),
		Planner:       Planner{Adapt: false, DefaultLevel: 1},
		PipelineDepth: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, _, err := f.Fetch(ctx, "ctx-1")
	if err == nil {
		t.Fatal("cancelled fetch succeeded")
	}
	if calls := func() int { src.mu.Lock(); defer src.mu.Unlock(); return src.calls }(); calls >= s.meta.NumChunks() {
		t.Errorf("cancelled fetch still issued all %d transfers", calls)
	}
}

// TestFetchSingleDestinationAllocation: FetchFrom must assemble into one
// destination tensor — total bytes allocated stay a small constant factor
// of the KV size and scale linearly (not quadratically) in chunk count.
// The pre-rewrite ConcatTokens-per-chunk pattern allocated ~n/2 full
// copies of the context; this asserts well under 2 extra copies total.
func TestFetchSingleDestinationAllocation(t *testing.T) {
	s := newStack(t)
	f := &Fetcher{
		Source: s.client, Codec: s.codec, Model: s.model, Device: llm.A40x4(),
		Planner: Planner{Adapt: false, DefaultLevel: 1},
	}
	ctx := context.Background()
	// Warm the codec scratch pools so steady-state allocation is measured.
	if _, _, err := f.Fetch(ctx, "ctx-1"); err != nil {
		t.Fatal(err)
	}
	kvBytes := int64(s.kv.Elems()) * 2 * 4 // both K and V, float32

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	kv, _, err := f.Fetch(ctx, "ctx-1")
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if kv.Tokens != s.kv.Tokens {
		t.Fatalf("fetched %d tokens, want %d", kv.Tokens, s.kv.Tokens)
	}
	allocated := int64(after.TotalAlloc - before.TotalAlloc)
	// One destination + transfer payloads + bounded scratch. The old
	// quadratic path allocated (numChunks/2 + 1) ≈ 3x kvBytes in tensors
	// alone for this 4-chunk context and grows with chunk count; the
	// bound fails it while leaving slack for payload buffers and noise.
	budget := 2 * kvBytes
	if allocated > budget {
		t.Errorf("fetch allocated %d bytes, budget %d (2x the %d-byte KV): reassembly is copying per chunk", allocated, budget, kvBytes)
	}
}

// TestFetchFromResidentPipelined: a warm fetch with a resident prefix
// must produce the same tensor as a cold fetch at every pipeline depth.
func TestFetchFromResidentPipelined(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()
	cold := mustDecodeReference(t, s)
	// Resident through the first two chunks (80 tokens each).
	resident, err := s.kv.SliceTokens(0, 160)
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{1, 3} {
		f := &Fetcher{
			Source: s.client, Codec: s.codec, Model: s.model, Device: llm.A40x4(),
			Planner:       Planner{Adapt: false, DefaultLevel: 1},
			PipelineDepth: depth,
		}
		kv, rep, err := f.FetchFrom(ctx, "ctx-1", resident)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if rep.ResidentTokens != 160 {
			t.Errorf("depth %d: resident tokens %d, want 160", depth, rep.ResidentTokens)
		}
		if len(rep.Decisions) != s.meta.NumChunks()-2 {
			t.Errorf("depth %d: fetched %d chunks, want %d", depth, len(rep.Decisions), s.meta.NumChunks()-2)
		}
		if kv.Tokens != cold.Tokens {
			t.Fatalf("depth %d: assembled %d tokens, want %d", depth, kv.Tokens, cold.Tokens)
		}
		// The resident prefix is exact (it came from the model), so the
		// warm suffix decodes against it bit-identically — but the
		// prefix itself is the lossless original rather than the decoded
		// approximation, so compare the suffix region against cold and
		// the prefix against the resident source.
		for _, kind := range tensor.Kinds {
			for l := 0; l < kv.Layers; l++ {
				for tok := 0; tok < kv.Tokens; tok++ {
					for c := 0; c < kv.Channels; c++ {
						want := cold.At(kind, l, tok, c)
						if tok < 160 {
							want = s.kv.At(kind, l, tok, c)
						}
						if got := kv.At(kind, l, tok, c); got != want {
							t.Fatalf("depth %d: mismatch at (%v,%d,%d,%d): %v vs %v", depth, kind, l, tok, c, got, want)
						}
					}
				}
			}
		}
	}
}

// TestFetchTextFallbackPipelined: a planner that forces the text path
// must still assemble bit-identically through the single-destination
// pipeline (ExtendKV resumes from the partially filled tensor).
func TestFetchTextFallbackPipelined(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()
	// An absurdly generous SLO with adaptation on selects text (lossless)
	// for every chunk.
	f := &Fetcher{
		Source: s.client, Codec: s.codec, Model: s.model, Device: llm.A40x4(),
		Planner:       Planner{Adapt: true, SLO: time.Hour, PriorBandwidth: 1e12},
		PipelineDepth: 3,
	}
	kv, rep, err := f.Fetch(ctx, "ctx-1")
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range rep.Decisions {
		if !d.Choice.Text {
			t.Fatalf("decision %d chose %v, want text", i, d.Choice)
		}
	}
	// Text recompute is lossless: the result is the original KV exactly.
	if d, err := kv.MaxAbsDiff(s.kv); err != nil || d != 0 {
		t.Fatalf("text-path fetch differs from original KV (diff %v, err %v)", d, err)
	}
	if rep.RecomputeTime <= 0 {
		t.Errorf("text fetch reported no recompute time")
	}
	if rep.DecodeTime != 0 {
		t.Errorf("text fetch reported codec decode time %v", rep.DecodeTime)
	}
}
