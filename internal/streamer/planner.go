// Package streamer implements CacheGen's KV cache streaming adaptation
// (§5.3, Appendix C.1): fetching a context's chunks one by one while
// choosing, per chunk, a streaming configuration — one of the codec's
// encoding levels or the text-recompute fallback — so the whole context
// loads within a TTFT service-level objective under varying bandwidth.
//
// The package separates the decision logic (Planner, pure and unit-
// testable) from two executors: Simulate, which runs a request on the
// virtual-time network simulator with the LLM cost model (the experiment
// path), and Fetcher, which streams real bitstreams from a transport
// server, decodes them pipelined with transmission, and recomputes
// text-mode chunks with the model (the live path).
package streamer

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

// Choice is the streaming configuration selected for one chunk: either an
// encoding level or the text fallback ("send the chunk in text format and
// let the LLM recompute its KV", §5.3).
type Choice struct {
	Text  bool
	Level core.Level
	// Source, when set, routes the chunk's delivery to a specific source
	// class ("ram", "disk", "peer", …; see the Source* constants). The
	// Planner never sets it — the fleet serves every chunk — but a
	// scheduler policy uses it to steer individual chunks at the local
	// payload cache, a colocated store, or a peer gateway's resident KV.
	// The Fetcher falls back to the fleet when the routed source misses.
	Source string
}

// String renders the choice as the paper's figures label it.
func (c Choice) String() string {
	if c.Text {
		return "text"
	}
	return fmt.Sprintf("L%d", c.Level)
}

// ChunkInfo is what the planner knows about one chunk ahead of time — all
// of it available offline from the store's metadata plus the cost model.
type ChunkInfo struct {
	// Tokens is the chunk length in tokens.
	Tokens int
	// SizesByLevel[lv] is the encoded bitstream size at level lv.
	SizesByLevel []int64
	// TextBytes is the size of the chunk's token-text payload.
	TextBytes int64
	// Recompute is the (estimated) GPU time to recompute this chunk's KV
	// from text, given all previous chunks resident.
	Recompute time.Duration

	// The fields below annotate the chunk with its delivery identity, so
	// a scheduling policy can price alternative sources. The Fetcher
	// fills them from the manifest when a Policy is installed; they stay
	// zero in simulation and on the greedy path, and the Planner ignores
	// them.

	// Context is the context id the chunk belongs to.
	Context string
	// Index is the chunk's absolute index within the context.
	Index int
	// HashByLevel[lv] is the chunk's content hash at encoding level lv.
	HashByLevel []string
	// TextHash is the content hash of the chunk's token-text payload
	// ("" when the context was published without text).
	TextHash string
	// KVBytes is the decoded KV size of the chunk in FP16 — what a peer
	// transfer of the finished tensor rows would move.
	KVBytes int64
}

// Planner implements the adaptation logic of Algorithm 1 (§C.1). The
// quality ordering across configurations is: text (lossless) ≻ level 0 ≻
// level 1 ≻ … ; the planner picks the least-lossy configuration whose
// expected completion time for all remaining chunks fits the remaining
// SLO budget, and the fastest configuration when nothing fits.
type Planner struct {
	// SLO is the TTFT objective. Zero disables SLO-driven adaptation: the
	// planner streams at DefaultLevel (§C.2), except that with
	// MinimizeTTFT set it falls back to text when that is faster — the
	// "short context" behaviour of §7.3.
	SLO time.Duration
	// DefaultLevel is used for the first chunk when no throughput estimate
	// exists (§C.2: "CacheGen starts with a default medium encoding
	// level") and whenever adaptation is disabled.
	DefaultLevel core.Level
	// PriorBandwidth, if positive, seeds the first chunk's throughput
	// estimate (§5.3: "if some prior knowledge of the network throughput
	// is available").
	PriorBandwidth float64
	// RTT is the per-chunk request overhead added to transfer estimates.
	RTT time.Duration
	// Concurrency is N_c, the number of concurrent requests sharing the
	// link at this chunk index; expected delays are multiplied by it
	// (§5.3, multi-request batching). Zero means 1.
	Concurrency int
	// Adapt enables per-chunk adaptation. When false the planner always
	// returns DefaultLevel — the "CacheGen w/o adaptation" baseline of
	// Fig 13.
	Adapt bool
	// MinimizeTTFT, with SLO zero, picks text when its expected completion
	// beats DefaultLevel's (requires a throughput estimate).
	MinimizeTTFT bool
	// ForceText pins every chunk to the text-recompute fallback,
	// overriding adaptation. The gateway's degradation ladder sets it at
	// its last rung: text trades GPU recompute for near-zero network
	// dependence, which is the right trade when the fleet, not the
	// link, is what's degraded.
	ForceText bool
}

// Levels returns how many encoding levels the chunk metadata carries.
func levels(chunks []ChunkInfo) int {
	if len(chunks) == 0 {
		return 0
	}
	return len(chunks[0].SizesByLevel)
}

// Choose selects the configuration for chunk idx. elapsed is the time
// since the request started; throughputBPS is the estimate measured from
// the previous chunk (≤0 if unknown, first chunk).
func (p Planner) Choose(idx int, elapsed time.Duration, throughputBPS float64, chunks []ChunkInfo) (Choice, error) {
	if idx < 0 || idx >= len(chunks) {
		return Choice{}, fmt.Errorf("streamer: chunk index %d outside [0,%d)", idx, len(chunks))
	}
	nLevels := levels(chunks)
	if nLevels == 0 {
		return Choice{}, fmt.Errorf("streamer: chunk metadata carries no levels")
	}
	if int(p.DefaultLevel) >= nLevels {
		return Choice{}, fmt.Errorf("streamer: default level %d outside [0,%d)", p.DefaultLevel, nLevels)
	}
	if throughputBPS <= 0 {
		throughputBPS = p.PriorBandwidth
	}

	if p.ForceText {
		return Choice{Text: true}, nil
	}

	if !p.Adapt {
		return Choice{Level: p.DefaultLevel}, nil
	}

	if p.SLO <= 0 {
		// No SLO: default level, except the short-context TTFT shortcut.
		if p.MinimizeTTFT && throughputBPS > 0 {
			if p.textCost(idx, chunks, throughputBPS) < p.levelCost(idx, int(p.DefaultLevel), chunks, throughputBPS) {
				return Choice{Text: true}, nil
			}
		}
		return Choice{Level: p.DefaultLevel}, nil
	}

	remaining := p.SLO - elapsed

	// Unknown throughput with an SLO: the default medium level (§C.2).
	if throughputBPS <= 0 {
		return Choice{Level: p.DefaultLevel}, nil
	}

	// Algorithm 1: text first (lossless), then levels best-first.
	if p.textCost(idx, chunks, throughputBPS) <= remaining {
		return Choice{Text: true}, nil
	}
	for lv := 0; lv < nLevels; lv++ {
		if p.levelCost(idx, lv, chunks, throughputBPS) <= remaining {
			return Choice{Level: core.Level(lv)}, nil
		}
	}

	// Nothing fits: minimise the damage with the fastest configuration.
	best := Choice{Level: core.Level(nLevels - 1)}
	bestCost := p.levelCost(idx, nLevels-1, chunks, throughputBPS)
	if tc := p.textCost(idx, chunks, throughputBPS); tc < bestCost {
		best = Choice{Text: true}
	}
	return best, nil
}

// textCost estimates completing all remaining chunks via text recompute.
func (p Planner) textCost(idx int, chunks []ChunkInfo, bps float64) time.Duration {
	var total time.Duration
	for _, ch := range chunks[idx:] {
		total += p.scaleNet(netsim.TransferTime(ch.TextBytes, bps)) + p.RTT + ch.Recompute
	}
	return total
}

// levelCost estimates completing all remaining chunks at level lv
// ("size(chunks_to_send, level) ÷ throughput", Alg 1).
func (p Planner) levelCost(idx, lv int, chunks []ChunkInfo, bps float64) time.Duration {
	var total time.Duration
	for _, ch := range chunks[idx:] {
		total += p.scaleNet(netsim.TransferTime(ch.SizesByLevel[lv], bps)) + p.RTT
	}
	return total
}

// scaleNet multiplies a network estimate by the batching factor N_c.
func (p Planner) scaleNet(d time.Duration) time.Duration {
	if p.Concurrency > 1 {
		return d * time.Duration(p.Concurrency)
	}
	return d
}
