package streamer

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

// testChunks builds n identical chunks: 100 MB / 60 MB / 30 MB / 15 MB at
// levels 0–3, 6 KB of text, 300 ms recompute each.
func testChunks(n int) []ChunkInfo {
	out := make([]ChunkInfo, n)
	for i := range out {
		out[i] = ChunkInfo{
			Tokens:       1500,
			SizesByLevel: []int64{100e6, 60e6, 30e6, 15e6},
			TextBytes:    6000,
			Recompute:    300 * time.Millisecond,
		}
	}
	return out
}

func TestChooseValidation(t *testing.T) {
	p := Planner{Adapt: true, SLO: time.Second}
	chunks := testChunks(2)
	if _, err := p.Choose(-1, 0, 1e9, chunks); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := p.Choose(2, 0, 1e9, chunks); err == nil {
		t.Error("out-of-range index accepted")
	}
	bad := Planner{Adapt: true, SLO: time.Second, DefaultLevel: 9}
	if _, err := bad.Choose(0, 0, 1e9, chunks); err == nil {
		t.Error("invalid default level accepted")
	}
	if _, err := p.Choose(0, 0, 1e9, nil); err == nil {
		t.Error("empty chunk list accepted")
	}
}

func TestNoAdaptAlwaysDefault(t *testing.T) {
	p := Planner{Adapt: false, DefaultLevel: 1, SLO: time.Second}
	for _, bps := range []float64{0, 1e3, 1e12} {
		c, err := p.Choose(0, 0, bps, testChunks(4))
		if err != nil {
			t.Fatal(err)
		}
		if c.Text || c.Level != 1 {
			t.Errorf("bps=%v: choice %v, want L1", bps, c)
		}
	}
}

func TestFirstChunkDefaultsWithoutEstimate(t *testing.T) {
	// §C.2: with no throughput estimate and no prior, start at the default
	// medium level.
	p := Planner{Adapt: true, SLO: 2 * time.Second, DefaultLevel: 1}
	c, err := p.Choose(0, 0, 0, testChunks(4))
	if err != nil {
		t.Fatal(err)
	}
	if c.Text || c.Level != 1 {
		t.Errorf("choice %v, want default L1", c)
	}
}

func TestPriorBandwidthSeedsFirstChunk(t *testing.T) {
	// With prior knowledge of a fast link, the first chunk can pick the
	// highest-quality level (§5.3).
	p := Planner{Adapt: true, SLO: 2 * time.Second, DefaultLevel: 2, PriorBandwidth: netsim.Gbps(10)}
	c, err := p.Choose(0, 0, 0, testChunks(4))
	if err != nil {
		t.Fatal(err)
	}
	// 4 chunks × 100 MB at 10 Gbps = 0.32 s < 2 s, but text (4×0.3 s=1.2s +
	// transfers) also fits and is lossless, so text wins under Algorithm 1.
	if !c.Text {
		t.Errorf("choice %v, want text (lossless fits the budget)", c)
	}
}

func TestQualityOrderingUnderShrinkingBudget(t *testing.T) {
	// At a fixed 1 Gbps estimate, shrinking the remaining budget should
	// walk down the quality ladder: text ≻ L0 ≻ … ≻ L3.
	chunks := testChunks(1)
	bps := netsim.Gbps(1) // level costs: 0.8s, 0.48s, 0.24s, 0.12s
	// Text is lossless and would dominate any budget ≥ its recompute time,
	// so make recompute expensive to expose the full level ladder.
	chunks[0].Recompute = 5 * time.Second
	for _, c := range []struct {
		budget time.Duration
		want   Choice
	}{
		{6 * time.Second, Choice{Text: true}},      // recompute fits
		{900 * time.Millisecond, Choice{Level: 0}}, // 0.8s fits
		{500 * time.Millisecond, Choice{Level: 1}}, // 0.48s fits
		{300 * time.Millisecond, Choice{Level: 2}}, // 0.24s fits
		{150 * time.Millisecond, Choice{Level: 3}}, // 0.12s fits
		{10 * time.Millisecond, Choice{Level: 3}},  // nothing fits: fastest
	} {
		p := Planner{Adapt: true, SLO: c.budget, DefaultLevel: 1}
		got, err := p.Choose(0, 0, bps, chunks)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("budget %v: choice %v, want %v", c.budget, got, c.want)
		}
	}
}

func TestFallbackPicksFastestWhenNothingFits(t *testing.T) {
	chunks := testChunks(1)
	chunks[0].Recompute = 50 * time.Millisecond // text is fastest
	p := Planner{Adapt: true, SLO: time.Millisecond, DefaultLevel: 1}
	got, err := p.Choose(0, time.Millisecond, netsim.Gbps(0.1), chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Text {
		t.Errorf("choice %v, want text (fastest when nothing fits)", got)
	}
}

func TestBudgetAccountsForAllRemainingChunks(t *testing.T) {
	// Algorithm 1 sums sizes over chunks_to_send: with 4 chunks left, a
	// budget that fits one chunk at L0 but not four must drop levels.
	chunks := testChunks(4)
	chunks[0].Recompute = 5 * time.Second // keep text out of the picture
	chunks[1].Recompute = 5 * time.Second
	chunks[2].Recompute = 5 * time.Second
	chunks[3].Recompute = 5 * time.Second
	bps := netsim.Gbps(1)
	p := Planner{Adapt: true, SLO: time.Second, DefaultLevel: 0}
	got, err := p.Choose(0, 0, bps, chunks)
	if err != nil {
		t.Fatal(err)
	}
	// 4×0.8s = 3.2s > 1s at L0; 4×0.24s = 0.96s fits at L2.
	if got.Text || got.Level != 2 {
		t.Errorf("choice %v, want L2", got)
	}

	// From chunk 3 (one chunk left), L0 fits again.
	got, err = p.Choose(3, 0, bps, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text || got.Level != 0 {
		t.Errorf("last-chunk choice %v, want L0", got)
	}
}

func TestConcurrencyMultipliesNetworkCost(t *testing.T) {
	chunks := testChunks(1)
	chunks[0].Recompute = 5 * time.Second
	bps := netsim.Gbps(1)
	solo := Planner{Adapt: true, SLO: time.Second, DefaultLevel: 0}
	crowd := Planner{Adapt: true, SLO: time.Second, DefaultLevel: 0, Concurrency: 4}
	a, err := solo.Choose(0, 0, bps, chunks)
	if err != nil {
		t.Fatal(err)
	}
	b, err := crowd.Choose(0, 0, bps, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if a.Level >= b.Level {
		t.Errorf("shared link should force a lower-quality level: solo %v, crowd %v", a, b)
	}
}

func TestMinimizeTTFTPrefersTextForShortContexts(t *testing.T) {
	// §7.3: below ~1K tokens, loading text is faster than fetching KV.
	short := []ChunkInfo{{
		Tokens:       500,
		SizesByLevel: []int64{20e6, 12e6, 6e6, 3e6},
		TextBytes:    2000,
		Recompute:    20 * time.Millisecond,
	}}
	p := Planner{Adapt: true, MinimizeTTFT: true, DefaultLevel: 1, RTT: 10 * time.Millisecond}
	got, err := p.Choose(0, 0, netsim.Gbps(3), short)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Text {
		t.Errorf("short context choice %v, want text", got)
	}

	long := testChunks(6)
	got, err = p.Choose(0, 0, netsim.Gbps(3), long)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text {
		t.Error("long context should stream KV, not text")
	}
}

func TestZeroBandwidthFallsBackToDefault(t *testing.T) {
	// A zero or negative estimate (and no prior) means "unknown", not
	// "infinitely slow": the planner must take the §C.2 default, never
	// divide by the estimate.
	p := Planner{Adapt: true, SLO: time.Second, DefaultLevel: 2}
	for _, bps := range []float64{0, -1} {
		got, err := p.Choose(0, 0, bps, testChunks(4))
		if err != nil {
			t.Fatal(err)
		}
		if got.Text || got.Level != 2 {
			t.Errorf("bps=%v: choice %v, want default L2", bps, got)
		}
	}
	// MinimizeTTFT needs an estimate too; without one it must not panic
	// and must keep the default.
	p = Planner{Adapt: true, MinimizeTTFT: true, DefaultLevel: 1}
	got, err := p.Choose(0, 0, 0, testChunks(2))
	if err != nil {
		t.Fatal(err)
	}
	if got.Text || got.Level != 1 {
		t.Errorf("MinimizeTTFT without estimate: choice %v, want default L1", got)
	}
}

func TestNearZeroBandwidthDegradesDeterministically(t *testing.T) {
	// At 1 bit/s nothing can meet any budget; the planner must settle on
	// the least-bytes configuration (here: text, 6 KB vs 15 MB at L3) and
	// return it for every chunk, every time.
	chunks := testChunks(3)
	p := Planner{Adapt: true, SLO: 2 * time.Second, DefaultLevel: 1}
	for idx := range chunks {
		for rep := 0; rep < 3; rep++ {
			got, err := p.Choose(idx, 0, 1, chunks)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Text {
				t.Fatalf("chunk %d rep %d: choice %v, want text (fewest bytes)", idx, rep, got)
			}
		}
	}
}

func TestSLOAlreadyBlownAtAdmission(t *testing.T) {
	// A request admitted after its whole SLO has elapsed (queueing burned
	// the budget) has negative remaining time: no configuration fits, and
	// the planner must degrade to the fastest one — all-text when
	// recompute is cheap — not error or oscillate.
	chunks := testChunks(2)
	chunks[0].Recompute = 50 * time.Millisecond
	chunks[1].Recompute = 50 * time.Millisecond
	p := Planner{Adapt: true, SLO: time.Second, DefaultLevel: 0}
	elapsed := 3 * time.Second // 3× the SLO already spent
	var first Choice
	for rep := 0; rep < 3; rep++ {
		got, err := p.Choose(0, elapsed, netsim.Gbps(0.5), chunks)
		if err != nil {
			t.Fatal(err)
		}
		if rep == 0 {
			first = got
			if !got.Text {
				t.Fatalf("blown SLO choice %v, want text (fastest here)", got)
			}
		} else if got != first {
			t.Fatalf("blown SLO choice flapped: %v then %v", first, got)
		}
	}

	// With recompute expensive, the fastest level must win instead — still
	// deterministic, still no error.
	chunks[0].Recompute = time.Hour
	chunks[1].Recompute = time.Hour
	got, err := p.Choose(0, elapsed, netsim.Gbps(0.5), chunks)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text || got.Level != 3 {
		t.Errorf("blown SLO with costly recompute: choice %v, want L3", got)
	}
}

func TestSingleChunkContext(t *testing.T) {
	chunks := testChunks(1)
	// Budget fits L1 for the only chunk but not L0 (0.8 s at 1 Gbps);
	// recompute is too slow for text.
	chunks[0].Recompute = 5 * time.Second
	p := Planner{Adapt: true, SLO: 500 * time.Millisecond, DefaultLevel: 0}
	got, err := p.Choose(0, 0, netsim.Gbps(1), chunks)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text || got.Level != 1 {
		t.Errorf("single-chunk choice %v, want L1", got)
	}
	// The only chunk is also the last: a roomy budget upgrades to text
	// (lossless) exactly as Algorithm 1 orders.
	chunks[0].Recompute = 100 * time.Millisecond
	got, err = p.Choose(0, 0, netsim.Gbps(1), chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Text {
		t.Errorf("single-chunk roomy budget choice %v, want text", got)
	}
	// Out-of-range on a single-chunk context still errors.
	if _, err := p.Choose(1, 0, netsim.Gbps(1), chunks); err == nil {
		t.Error("index 1 accepted on a single-chunk context")
	}
}

func TestChoiceString(t *testing.T) {
	if (Choice{Text: true}).String() != "text" {
		t.Error("text choice label")
	}
	if (Choice{Level: core.Level(2)}).String() != "L2" {
		t.Error("level choice label")
	}
}
