package streamer

import (
	"context"
	"time"

	"repro/internal/tensor"
)

// Policy is the per-request decision engine a Fetcher consults for each
// chunk: Planner implements it with the greedy per-request logic of
// Algorithm 1, and sched.Plan implements it with the fleet-wide
// fetch-vs-recompute cost model. Choose is called with the chunk index
// relative to the fetched suffix, the time since the request started,
// and the live throughput estimate (≤0 when none exists yet).
type Policy interface {
	Choose(idx int, elapsed time.Duration, throughputBPS float64, chunks []ChunkInfo) (Choice, error)
}

// PathHint is a PathPolicy's verdict on how a fetch should be delivered.
type PathHint int

const (
	// PathAuto keeps the Fetcher's default: the multiplexed server-push
	// stream when the source speaks it, request/response otherwise.
	PathAuto PathHint = iota
	// PathChunks forces the per-chunk request/response path. A policy
	// returns it when it routed chunks to sources the stream cannot serve
	// — the local payload cache, a colocated store, or a peer's resident
	// KV — which are only reachable at chunk granularity.
	PathChunks
)

// PathPolicy is a Policy that inspects a request's chunk metadata before
// any transfer. PlanPath is called once per fetch with the annotated
// suffix chunks (hashes, indices and raw KV sizes filled in); the policy
// primes its per-chunk source assignment there and picks the delivery
// path.
type PathPolicy interface {
	Policy
	PlanPath(chunks []ChunkInfo) PathHint
}

// PayloadCache is a gateway-local RAM tier for chunk payloads, keyed by
// content hash. The Fetcher writes every payload it pulls over the
// network through it and serves "ram"-routed choices from it. All
// methods must be safe for concurrent use.
type PayloadCache interface {
	// Get returns the payload for hash, or false on a miss.
	Get(hash string) ([]byte, bool)
	// Put stores one payload (idempotent; the cache may evict).
	Put(hash string, data []byte)
	// Drop removes a payload whose bytes failed integrity checks.
	Drop(hash string)
}

// ChunkReader reads chunk payloads by content hash from a colocated
// replica — a store handle on the same host, reachable without touching
// the network. cluster and sched adapt storage.Store to it.
type ChunkReader interface {
	GetChunkData(ctx context.Context, hash string) ([]byte, error)
}

// PeerSource serves decoded KV rows for chunks another gateway in the
// fleet already holds resident — the peer-transfer path. FetchResident
// returns the chunk's KV slice and the encoding level it was originally
// decoded at (storage.TextLevel for a lossless recompute origin), or an
// error when no peer holds it. The returned tensor is the caller's to
// keep.
type PeerSource interface {
	FetchResident(ctx context.Context, contextID string, chunk int) (*tensor.KV, int, error)
}

// Source-class labels a Choice (and the resulting ChunkDecision) can
// carry. The empty string means the fetcher's default delivery: the
// fleet for bitstream chunks, text+recompute for text chunks.
const (
	SourceRAM       = "ram"       // gateway-local payload cache
	SourceDisk      = "disk"      // colocated store replica, no network
	SourceRemote    = "remote"    // same-region ring node over the fleet
	SourceXRegion   = "xregion"   // cross-region replica over the fleet
	SourceRecompute = "recompute" // text payload + GPU prefill
	SourcePeer      = "peer"      // decoded KV resident on a peer gateway
)

// sourceLabel resolves a choice's delivered source class, inferring the
// default labels when the policy did not set one.
func sourceLabel(c Choice) string {
	if c.Source != "" {
		return c.Source
	}
	if c.Text {
		return SourceRecompute
	}
	return SourceRemote
}

// DecisionSource resolves the source class a chunk decision was
// delivered by ("remote" and "recompute" for unlabeled bitstream/text
// deliveries from policy-less fetches).
func DecisionSource(d ChunkDecision) string {
	return sourceLabel(d.Choice)
}
