package streamer

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// PublishOptions tune Publish.
type PublishOptions struct {
	// SizeScale multiplies the *reported* bitstream sizes in the stored
	// metadata (not the payloads). Experiments that synthesise a channel
	// subsample set this to Config.ChannelScale() so that transfer-time
	// accounting reflects the full-size model; the live path leaves it 1.
	// Text payload sizes are never scaled (tokens are tokens).
	SizeScale float64
	// KV, if non-nil, is the precomputed cache for the tokens (skips
	// CalculateKV).
	KV *tensor.KV
	// RefineTargets additionally stores incremental-streaming refinement
	// bitstreams (DESIGN.md §5b) that upgrade the coarsest level to each
	// listed target level. FetchIncremental consumes them.
	RefineTargets []core.Level
}

// Publish is the store_kv interface of §6: it computes (or accepts) the
// context's KV cache, splits it into chunks, encodes every chunk at every
// encoding level, stores the bitstreams plus the per-chunk token text
// (for the recompute fallback) and the metadata the streamer adapts over.
func Publish(ctx context.Context, st storage.Store, codec *core.Codec, model *llm.Model,
	contextID string, tokens []llm.Token, opts PublishOptions) (storage.ContextMeta, error) {

	if len(tokens) == 0 {
		return storage.ContextMeta{}, fmt.Errorf("streamer: publishing empty context %q", contextID)
	}
	scale := opts.SizeScale
	if scale <= 0 {
		scale = 1
	}
	kv := opts.KV
	if kv == nil {
		kv = model.CalculateKV(tokens)
	}
	if kv.Tokens != len(tokens) {
		return storage.ContextMeta{}, fmt.Errorf("streamer: cache covers %d tokens, context has %d", kv.Tokens, len(tokens))
	}

	offs := codec.SplitOffsets(len(tokens))
	nChunks := len(offs) - 1
	cfg := codec.Config()
	meta := storage.ContextMeta{
		ContextID:   contextID,
		Model:       model.Config().Name,
		TokenCount:  len(tokens),
		ChunkTokens: make([]int, nChunks),
		Levels:      cfg.Levels(),
		SizesBytes:  make([][]int64, cfg.Levels()),
		TextBytes:   make([]int64, nChunks),
	}
	for lv := range meta.SizesBytes {
		meta.SizesBytes[lv] = make([]int64, nChunks)
	}
	coarsest := core.Level(cfg.Levels() - 1)
	for _, target := range opts.RefineTargets {
		if target >= coarsest || target < 0 {
			return storage.ContextMeta{}, fmt.Errorf("streamer: refinement target L%d must be finer than the coarsest level L%d", target, coarsest)
		}
		meta.RefineTargets = append(meta.RefineTargets, int(target))
		meta.RefineBytes = append(meta.RefineBytes, make([]int64, nChunks))
	}

	for i := 0; i < nChunks; i++ {
		lo, hi := offs[i], offs[i+1]
		meta.ChunkTokens[i] = hi - lo
		part, err := kv.SliceTokens(lo, hi)
		if err != nil {
			return storage.ContextMeta{}, fmt.Errorf("streamer: %w", err)
		}
		for lv := 0; lv < cfg.Levels(); lv++ {
			data, err := codec.EncodeChunk(part, i, lo, core.Level(lv))
			if err != nil {
				return storage.ContextMeta{}, fmt.Errorf("streamer: encoding chunk %d level %d: %w", i, lv, err)
			}
			key := storage.ChunkKey{ContextID: contextID, Chunk: i, Level: lv}
			if err := st.Put(ctx, key, data); err != nil {
				return storage.ContextMeta{}, fmt.Errorf("streamer: storing chunk %d level %d: %w", i, lv, err)
			}
			meta.SizesBytes[lv][i] = int64(math.Round(float64(len(data)) * scale))
		}
		text := llm.EncodeTokens(tokens[lo:hi])
		key := storage.ChunkKey{ContextID: contextID, Chunk: i, Level: storage.TextLevel}
		if err := st.Put(ctx, key, text); err != nil {
			return storage.ContextMeta{}, fmt.Errorf("streamer: storing text chunk %d: %w", i, err)
		}
		meta.TextBytes[i] = int64(len(text))

		for ti, target := range opts.RefineTargets {
			data, err := codec.EncodeRefinement(part, i, lo, coarsest, target)
			if err != nil {
				return storage.ContextMeta{}, fmt.Errorf("streamer: encoding refinement chunk %d -> L%d: %w", i, target, err)
			}
			key := storage.ChunkKey{ContextID: contextID, Chunk: i, Level: storage.RefineLevelKey(int(target))}
			if err := st.Put(ctx, key, data); err != nil {
				return storage.ContextMeta{}, fmt.Errorf("streamer: storing refinement chunk %d: %w", i, err)
			}
			meta.RefineBytes[ti][i] = int64(math.Round(float64(len(data)) * scale))
		}
	}

	if err := st.PutMeta(ctx, meta); err != nil {
		return storage.ContextMeta{}, fmt.Errorf("streamer: storing meta: %w", err)
	}
	return meta, nil
}
