package streamer

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// PublishOptions tune Publish and Append.
type PublishOptions struct {
	// SizeScale multiplies the *reported* bitstream sizes in the stored
	// metadata (not the payloads). Experiments that synthesise a channel
	// subsample set this to Config.ChannelScale() so that transfer-time
	// accounting reflects the full-size model; the live path leaves it 1.
	// Text payload sizes are never scaled (tokens are tokens).
	SizeScale float64
	// KV, if non-nil, is the precomputed cache for the tokens (skips
	// CalculateKV). For Append it must cover the context's *full* new
	// token count; the engine slices the suffix it re-encodes.
	KV *tensor.KV
	// RefineTargets additionally stores incremental-streaming refinement
	// bitstreams (DESIGN.md §5b) that upgrade the coarsest level to each
	// listed target level. FetchIncremental consumes them. Append
	// inherits the published targets; passing different ones is an error.
	RefineTargets []core.Level
}

// PublishStats accounts one publish or append against the
// content-addressed store: how much was actually encoded and uploaded
// versus adopted by reference. The dedup ratio experiments (X6) and the
// gateway sessions read these.
type PublishStats struct {
	// Chunks is the number of chunks the resulting manifest covers;
	// EncodedChunks of them went through the engine this call, and
	// ReusedChunks were adopted wholesale from the prior manifest (the
	// append path's clean prefix).
	Chunks, EncodedChunks, ReusedChunks int
	// PayloadsStored counts payloads written to the store (new content);
	// PayloadsReused counts references to payloads that already existed.
	PayloadsStored, PayloadsReused int
	// BytesStored / BytesReused are the corresponding raw payload bytes.
	BytesStored, BytesReused int64
	// EncodesSkipped counts bitstream encodes avoided entirely because
	// the fingerprint index recognised the chunk's inputs.
	EncodesSkipped int
}

// add folds o into s (concurrent workers merge through a mutex).
func (s *PublishStats) add(o PublishStats) {
	s.Chunks += o.Chunks
	s.EncodedChunks += o.EncodedChunks
	s.ReusedChunks += o.ReusedChunks
	s.PayloadsStored += o.PayloadsStored
	s.PayloadsReused += o.PayloadsReused
	s.BytesStored += o.BytesStored
	s.BytesReused += o.BytesReused
	s.EncodesSkipped += o.EncodesSkipped
}

// Publish is the store_kv interface of §6 over the content-addressed
// store: it computes (or accepts) the context's KV cache, splits it into
// chunks, encodes every chunk at every encoding level plus the per-chunk
// token text (for the recompute fallback), stores each payload under its
// bitstream hash, and writes the manifest mapping the context to its
// payload references.
//
// Publish is manifest-diff-aware through the store's fingerprint index:
// a chunk whose identity (codec fingerprint, model, position, token
// prefix) was encoded before — by this context or any other — skips both
// the encode and the upload, so contexts sharing prefixes (RAG document
// pools, forked conversations) cost storage and CPU once.
func Publish(ctx context.Context, st storage.Store, codec *core.Codec, model *llm.Model,
	contextID string, tokens []llm.Token, opts PublishOptions) (storage.Manifest, *PublishStats, error) {

	if len(tokens) == 0 {
		return storage.Manifest{}, nil, fmt.Errorf("streamer: publishing empty context %q", contextID)
	}
	if opts.KV != nil && opts.KV.Tokens != len(tokens) {
		return storage.Manifest{}, nil, fmt.Errorf("streamer: cache covers %d tokens, context has %d", opts.KV.Tokens, len(tokens))
	}
	targets, err := refineTargetInts(codec, opts.RefineTargets)
	if err != nil {
		return storage.Manifest{}, nil, err
	}
	job := publishJob{
		contextID:    contextID,
		total:        len(tokens),
		firstChunk:   0,
		startOffset:  0,
		suffixTokens: tokens,
		targets:      targets,
		scale:        normScale(opts.SizeScale),
	}
	job.kv = kvProvider(model, tokens, opts.KV, 0)
	frag, err := encodeChunks(ctx, st, codec, model, job)
	if err != nil {
		return storage.Manifest{}, nil, err
	}
	man := frag.manifest(contextID, model.Config().Name, len(tokens), codec.Config().Levels(), targets)
	if err := st.PutManifest(ctx, man); err != nil {
		return storage.Manifest{}, nil, fmt.Errorf("streamer: storing manifest: %w", err)
	}
	frag.stats.Chunks = man.Meta.NumChunks()
	return man, &frag.stats, nil
}

func normScale(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

func refineTargetInts(codec *core.Codec, targets []core.Level) ([]int, error) {
	coarsest := core.Level(codec.Config().Levels() - 1)
	out := make([]int, 0, len(targets))
	for _, target := range targets {
		if target >= coarsest || target < 0 {
			return nil, fmt.Errorf("streamer: refinement target L%d must be finer than the coarsest level L%d", target, coarsest)
		}
		out = append(out, int(target))
	}
	return out, nil
}

// kvProvider returns a lazy accessor for the KV cache of
// tokens[startOffset:]: a fully-deduplicated publish never touches it, so
// CalculateKV only runs when at least one chunk actually encodes.
func kvProvider(model *llm.Model, tokens []llm.Token, precomputed *tensor.KV, startOffset int) func() (*tensor.KV, error) {
	var once sync.Once
	var kv *tensor.KV
	var err error
	return func() (*tensor.KV, error) {
		once.Do(func() {
			if precomputed != nil {
				if startOffset == 0 {
					kv = precomputed
					return
				}
				kv, err = precomputed.SliceTokens(startOffset, precomputed.Tokens)
				return
			}
			full := model.CalculateKV(tokens)
			if startOffset == 0 {
				kv = full
				return
			}
			kv, err = full.SliceTokens(startOffset, full.Tokens)
		})
		return kv, err
	}
}

// publishJob describes the chunk range [firstChunk, numChunks(total)) an
// engine call encodes: a fresh publish covers everything, an append only
// the dirty suffix.
type publishJob struct {
	contextID   string
	total       int    // token count of the whole (resulting) context
	firstChunk  int    // first chunk index to encode
	startOffset int    // absolute token offset of firstChunk
	prevChain   string // chain digest through chunk firstChunk-1 ("" at 0)
	// suffixTokens are tokens[startOffset:total].
	suffixTokens []llm.Token
	targets      []int
	scale        float64
	// kv lazily yields the cache of suffixTokens.
	kv func() (*tensor.KV, error)
}

// chunkFragments is the engine's output: manifest/meta rows for the
// encoded chunk range, positionally aligned from job.firstChunk.
type chunkFragments struct {
	chunkTokens []int
	chains      []string
	hashes      map[int][]string // level → per-chunk payload hashes
	sizes       map[int][]int64  // level → reported (scaled) sizes
	stats       PublishStats
}

// manifest assembles a whole-context manifest from fragments that cover
// every chunk (the fresh-publish case).
func (f *chunkFragments) manifest(contextID, modelName string, total, levels int, targets []int) storage.Manifest {
	meta := storage.ContextMeta{
		ContextID:   contextID,
		Model:       modelName,
		TokenCount:  total,
		ChunkTokens: f.chunkTokens,
		Levels:      levels,
		TextBytes:   f.sizes[storage.TextLevel],
		Format:      core.FormatV2,
	}
	meta.SizesBytes = make([][]int64, meta.Levels)
	for lv := 0; lv < meta.Levels; lv++ {
		meta.SizesBytes[lv] = f.sizes[lv]
	}
	for _, t := range targets {
		meta.RefineTargets = append(meta.RefineTargets, t)
		meta.RefineBytes = append(meta.RefineBytes, f.sizes[storage.RefineLevelKey(t)])
	}
	return storage.Manifest{Meta: meta, Hashes: f.hashes, ChainDigests: f.chains}
}

// modelFingerprint identifies the KV process: the same tokens under a
// different model (or seed) must never dedup against each other.
func modelFingerprint(model *llm.Model) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("cachegen-model-v1|%+v", model.Config())))
	return hex.EncodeToString(sum[:])
}

// chainDigest extends a running digest of the token stream. KV values are
// causal in the prefix (§5.1: self-attention), so a chunk's bitstream is
// a pure function of (codec, model, position, this digest) — which is
// exactly what the fingerprint index keys on.
func chainDigest(prev string, tokens []llm.Token) string {
	h := sha256.New()
	h.Write([]byte(prev))
	var buf [4]byte
	for _, t := range tokens {
		binary.BigEndian.PutUint32(buf[:], uint32(t))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fingerprintKey derives the dedup-index key of one (chunk, level)
// payload from everything its bitstream depends on.
func fingerprintKey(codecFP, modelFP string, level, chunk, lo, n int, chain string) string {
	h := sha256.New()
	fmt.Fprintf(h, "cachegen-fp-v1|%s|%s|%d|%d|%d|%d|%s", codecFP, modelFP, level, chunk, lo, n, chain)
	return hex.EncodeToString(h.Sum(nil))
}

// encodeChunks runs the publish engine over the job's chunk range:
// chunks are processed in parallel (bounded by the codec's worker
// budget), each first consulting the fingerprint index to skip encoding,
// then the store's content addressing to skip uploading.
func encodeChunks(ctx context.Context, st storage.Store, codec *core.Codec, model *llm.Model, job publishJob) (*chunkFragments, error) {
	cfg := codec.Config()
	offs := codec.SplitOffsets(job.total)
	nChunks := len(offs) - 1
	span := nChunks - job.firstChunk
	if span <= 0 {
		return nil, fmt.Errorf("streamer: empty chunk range for %q", job.contextID)
	}
	if offs[job.firstChunk] != job.startOffset {
		return nil, fmt.Errorf("streamer: chunk %d starts at %d, job says %d", job.firstChunk, offs[job.firstChunk], job.startOffset)
	}
	codecFP, err := codec.Fingerprint()
	if err != nil {
		return nil, fmt.Errorf("streamer: %w", err)
	}
	modelFP := modelFingerprint(model)
	coarsest := core.Level(cfg.Levels() - 1)

	frag := &chunkFragments{
		chunkTokens: make([]int, span),
		chains:      make([]string, span),
		hashes:      map[int][]string{},
		sizes:       map[int][]int64{},
	}
	levelRows := make([]int, 0, cfg.Levels()+1+len(job.targets))
	for lv := 0; lv < cfg.Levels(); lv++ {
		levelRows = append(levelRows, lv)
	}
	levelRows = append(levelRows, storage.TextLevel)
	for _, t := range job.targets {
		levelRows = append(levelRows, storage.RefineLevelKey(t))
	}
	for _, lv := range levelRows {
		frag.hashes[lv] = make([]string, span)
		frag.sizes[lv] = make([]int64, span)
	}

	// Chain digests are sequential but cheap (hashing token ids); payload
	// work is parallel.
	chain := job.prevChain
	for si := 0; si < span; si++ {
		lo, hi := offs[job.firstChunk+si], offs[job.firstChunk+si+1]
		frag.chunkTokens[si] = hi - lo
		chain = chainDigest(chain, job.suffixTokens[lo-job.startOffset:hi-job.startOffset])
		frag.chains[si] = chain
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var mu sync.Mutex // guards frag.stats
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	errs := make([]error, span)
	for si := 0; si < span; si++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(si int) {
			defer wg.Done()
			defer func() { <-sem }()
			stats, err := encodeOneChunk(ctx, st, codec, model, job, frag, offs, si, codecFP, modelFP, coarsest)
			if err != nil {
				errs[si] = err
				return
			}
			mu.Lock()
			frag.stats.add(stats)
			mu.Unlock()
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return frag, nil
}

// encodeOneChunk resolves every payload of one chunk: fingerprint-index
// reuse, content-addressed upload dedup, or a fresh encode.
func encodeOneChunk(ctx context.Context, st storage.Store, codec *core.Codec, model *llm.Model,
	job publishJob, frag *chunkFragments, offs []int, si int, codecFP, modelFP string, coarsest core.Level) (PublishStats, error) {

	var stats PublishStats
	i := job.firstChunk + si // absolute chunk index
	lo, hi := offs[i], offs[i+1]
	n := hi - lo
	chain := frag.chains[si]

	// The chunk's KV slice, fetched lazily: if every bitstream payload is
	// a fingerprint hit, the KV is never materialised.
	var part *tensor.KV
	getPart := func() (*tensor.KV, error) {
		if part != nil {
			return part, nil
		}
		kv, err := job.kv()
		if err != nil {
			return nil, err
		}
		part, err = kv.SliceTokens(lo-job.startOffset, hi-job.startOffset)
		if err != nil {
			return nil, fmt.Errorf("streamer: %w", err)
		}
		return part, nil
	}

	// storePayload records one resolved payload, writing it unless the
	// store already holds the content.
	storePayload := func(level int, data []byte) error {
		hash := storage.HashChunk(data)
		exists, err := st.TouchChunk(ctx, hash)
		if err != nil {
			return fmt.Errorf("streamer: touching chunk %d level %d: %w", i, level, err)
		}
		if exists {
			stats.PayloadsReused++
			stats.BytesReused += int64(len(data))
		} else {
			if err := st.PutChunk(ctx, hash, data); err != nil {
				return fmt.Errorf("streamer: storing chunk %d level %d: %w", i, level, err)
			}
			stats.PayloadsStored++
			stats.BytesStored += int64(len(data))
		}
		frag.hashes[level][si] = hash
		size := int64(len(data))
		if level != storage.TextLevel {
			size = int64(math.Round(float64(len(data)) * job.scale))
		}
		frag.sizes[level][si] = size
		return nil
	}

	// reusePayload adopts a fingerprint-index hit without re-encoding,
	// provided the payload still exists on its placement nodes (a sweep
	// may have reclaimed it since the index entry was written).
	reusePayload := func(level int, fp storage.Fingerprint) (bool, error) {
		exists, err := st.TouchChunk(ctx, fp.Hash)
		if err != nil || !exists {
			return false, err
		}
		frag.hashes[level][si] = fp.Hash
		size := fp.Bytes
		if level != storage.TextLevel {
			size = int64(math.Round(float64(fp.Bytes) * job.scale))
		}
		frag.sizes[level][si] = size
		stats.PayloadsReused++
		stats.BytesReused += fp.Bytes
		stats.EncodesSkipped++
		return true, nil
	}

	// encoded resolves one bitstream payload (a real level or a
	// refinement) through the fingerprint index.
	encoded := func(level int, encode func(part *tensor.KV) ([]byte, error)) error {
		key := fingerprintKey(codecFP, modelFP, level, i, lo, n, chain)
		if fp, err := st.GetFingerprint(ctx, key); err == nil {
			ok, err := reusePayload(level, fp)
			if err != nil {
				return fmt.Errorf("streamer: touching chunk %d level %d: %w", i, level, err)
			}
			if ok {
				return nil
			}
		}
		part, err := getPart()
		if err != nil {
			return err
		}
		data, err := encode(part)
		if err != nil {
			return fmt.Errorf("streamer: encoding chunk %d level %d: %w", i, level, err)
		}
		if err := storePayload(level, data); err != nil {
			return err
		}
		fp := storage.Fingerprint{Hash: frag.hashes[level][si], Bytes: int64(len(data))}
		if err := st.PutFingerprint(ctx, key, fp); err != nil {
			return fmt.Errorf("streamer: indexing chunk %d level %d: %w", i, level, err)
		}
		return nil
	}

	encodedAny := false
	wasEncoded := func() {
		if !encodedAny {
			encodedAny = true
			stats.EncodedChunks++
		}
	}
	for lv := 0; lv < codec.Config().Levels(); lv++ {
		skippedBefore := stats.EncodesSkipped
		if err := encoded(lv, func(part *tensor.KV) ([]byte, error) {
			return codec.EncodeChunk(part, i, lo, core.Level(lv))
		}); err != nil {
			return stats, err
		}
		if stats.EncodesSkipped == skippedBefore {
			wasEncoded()
		}
	}
	for _, target := range job.targets {
		skippedBefore := stats.EncodesSkipped
		if err := encoded(storage.RefineLevelKey(target), func(part *tensor.KV) ([]byte, error) {
			return codec.EncodeRefinement(part, i, lo, coarsest, core.Level(target))
		}); err != nil {
			return stats, err
		}
		if stats.EncodesSkipped == skippedBefore {
			wasEncoded()
		}
	}
	// Token text needs no fingerprint indirection: serialising tokens is
	// cheap, and the content address alone dedups the upload.
	text := llm.EncodeTokens(job.suffixTokens[lo-job.startOffset : hi-job.startOffset])
	if err := storePayload(storage.TextLevel, text); err != nil {
		return stats, err
	}
	return stats, nil
}
