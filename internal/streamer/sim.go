package streamer

import (
	"fmt"
	"time"

	"repro/internal/llm"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// SimInput describes one simulated context-loading request.
type SimInput struct {
	// Chunks is the per-chunk metadata (BuildChunkInfos derives it from a
	// stored context's metadata plus the cost model).
	Chunks []ChunkInfo
	// TotalTokens is the context length.
	TotalTokens int
	// Link is the virtual-time link the request streams over.
	Link *netsim.Link
	// Planner holds the adaptation policy.
	Planner Planner
	// Model and Device drive compute-time accounting.
	Model  llm.Config
	Device llm.Device
	// Share is the fraction of the device this request gets (1/n under n
	// concurrent requests). Zero means 1.
	Share float64
	// SuffixTokens is the user prompt length prefilled after the context
	// loads (the query itself; footnote 4: the remaining forward pass is
	// marginal). Zero means 32.
	SuffixTokens int
	// DisablePipeline turns off the transmission/decode pipelining of §6
	// (for the Fig 14a breakdown ablation).
	DisablePipeline bool
	// FrameBytes, when positive, models transport v2 on the virtual
	// clock: each chunk streams as bounded DATA frames of this size over
	// one server-push stream (a single open RTT instead of one per
	// chunk), a bandwidth estimator is fed per frame, and the planner is
	// consulted at frame-batch decision points — re-leveling chunks not
	// yet started and abandoning the in-flight chunk when resending it
	// at the fresh choice is cheaper than finishing it. Zero keeps the
	// legacy per-chunk request/response model, whose only measurement is
	// the previous chunk's average throughput.
	FrameBytes int64
	// EstimatorWindow is the frame estimator's window in frames
	// (0 = netsim.DefaultEstimatorWindow). Frame mode only.
	EstimatorWindow int
	// DecisionFrames is how many frames pass between adaptation decision
	// points (0 = DefaultDecisionFrames). Frame mode only.
	DecisionFrames int
}

// ChunkDecision records what happened to one chunk in a run.
type ChunkDecision struct {
	Chunk      int
	Choice     Choice        // the configuration the chunk finally landed at
	Bytes      int64         // bytes of the delivered payload
	Abandoned  int64         // bytes sent then discarded by mid-chunk cancels
	Transfer   time.Duration // network time for this chunk
	Compute    time.Duration // decode or recompute time
	Throughput float64       // measured bits/s
	// Source is the delivered source class ("ram", "disk", "remote",
	// "xregion", "recompute", "peer"; see the Source* constants). Live
	// fetches always fill it; simulation leaves it empty.
	Source string
}

// SimResult is the outcome of one simulated request.
type SimResult struct {
	TTFT      time.Duration
	Decisions []ChunkDecision
	// BytesSent is the total on-wire size (the "size of KV cache" metric),
	// cancel waste included.
	BytesSent int64
	// AbandonedBytes is the cancel waste alone: bytes transferred for
	// in-flight chunks later restarted at a cheaper configuration.
	AbandonedBytes int64
	// Cancels counts in-flight chunks abandoned mid-transfer (frame mode).
	Cancels int
	// NetworkTime is the cumulative transfer time; ComputeTime the
	// cumulative decode/recompute time (some of it overlapped); SuffixTime
	// the prompt prefill after loading.
	NetworkTime, ComputeTime, SuffixTime time.Duration
	// SLOMet reports whether TTFT ≤ SLO (always true when SLO is unset).
	SLOMet bool
}

// TextOnly reports whether every chunk fell back to text.
func (r *SimResult) TextOnly() bool {
	for _, d := range r.Decisions {
		if !d.Choice.Text {
			return false
		}
	}
	return len(r.Decisions) > 0
}

// BuildChunkInfos derives the planner's chunk metadata from a stored
// context's metadata and the compute cost model. share is the GPU share
// used for recompute estimates.
func BuildChunkInfos(meta storage.ContextMeta, model llm.Config, dev llm.Device, share float64) ([]ChunkInfo, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	out := make([]ChunkInfo, meta.NumChunks())
	prefix := 0
	for i := range out {
		info := ChunkInfo{Tokens: meta.ChunkTokens[i]}
		info.SizesByLevel = make([]int64, meta.Levels)
		for lv := 0; lv < meta.Levels; lv++ {
			info.SizesByLevel[lv] = meta.SizesBytes[lv][i]
		}
		if len(meta.TextBytes) > 0 {
			info.TextBytes = meta.TextBytes[i]
		} else {
			info.TextBytes = int64(meta.ChunkTokens[i]) * llm.TextBytesPerToken
		}
		info.Recompute = model.MarginalPrefillTime(prefix, meta.ChunkTokens[i], dev, share)
		prefix += meta.ChunkTokens[i]
		out[i] = info
	}
	return out, nil
}

// Simulate runs one context-loading request in virtual time, applying the
// planner per chunk, pipelining decode with transmission, and accounting
// TTFT as the paper defines it: from request arrival to the first output
// token (KV load + prompt prefill).
func Simulate(in SimInput) (*SimResult, error) {
	if len(in.Chunks) == 0 {
		return nil, fmt.Errorf("streamer: no chunks to stream")
	}
	if in.Link == nil {
		return nil, fmt.Errorf("streamer: nil link")
	}
	share := in.Share
	if share <= 0 || share > 1 {
		share = 1
	}
	suffix := in.SuffixTokens
	if suffix == 0 {
		suffix = 32
	}

	if in.FrameBytes > 0 {
		return simulateFrames(in, share, suffix)
	}

	link := in.Link
	start := link.Now()
	// ready is the virtual time at which every chunk so far is decoded (or
	// recomputed) and resident in GPU memory.
	ready := start
	var throughput float64 // ≤0: unknown
	res := &SimResult{}

	for i := range in.Chunks {
		elapsed := link.Now() - start
		choice, err := in.Planner.Choose(i, elapsed, throughput, in.Chunks)
		if err != nil {
			return nil, err
		}
		ch := in.Chunks[i]

		var bytes int64
		var compute time.Duration
		if choice.Text {
			bytes = ch.TextBytes
			compute = ch.Recompute
		} else {
			bytes = ch.SizesByLevel[choice.Level]
			compute = in.Device.DecodeTime(bytes)
		}

		link.Advance(in.Planner.RTT)
		dur, err := link.Transfer(bytes)
		if err != nil {
			return nil, fmt.Errorf("streamer: chunk %d: %w", i, err)
		}
		transferEnd := link.Now()
		throughput = netsim.Throughput(bytes, dur)

		if in.DisablePipeline && !choice.Text {
			// Serial decode blocks the link (no overlap with the next
			// chunk's transmission).
			link.Advance(compute)
			ready = link.Now()
		} else {
			// Decode/recompute of chunk i overlaps transfer of chunk i+1,
			// but depends on chunk i's arrival and chunk i−1's readiness.
			ready = maxTime(ready, transferEnd) + compute
		}

		res.Decisions = append(res.Decisions, ChunkDecision{
			Chunk: i, Choice: choice, Bytes: bytes,
			Transfer: dur, Compute: compute, Throughput: throughput,
		})
		res.BytesSent += bytes
		res.NetworkTime += dur
		res.ComputeTime += compute
	}

	res.SuffixTime = in.Model.MarginalPrefillTime(in.TotalTokens, suffix, in.Device, share)
	ttftEnd := maxTime(link.Now(), ready) + res.SuffixTime
	res.TTFT = ttftEnd - start
	res.SLOMet = in.Planner.SLO <= 0 || res.TTFT <= in.Planner.SLO
	return res, nil
}

// simulateFrames is Simulate's transport-v2 model: server-push frames
// over one stream, a frame-fed bandwidth estimator, and mid-chunk
// decision points that can abandon the in-flight chunk. The stream pays
// one open RTT total (no per-chunk round trips) plus one RTT per cancel.
func simulateFrames(in SimInput, share float64, suffix int) (*SimResult, error) {
	link := in.Link
	start := link.Now()
	ready := start
	res := &SimResult{}
	est := netsim.NewEstimator(in.EstimatorWindow)
	decisionEvery := in.DecisionFrames
	if decisionEvery <= 0 {
		decisionEvery = DefaultDecisionFrames
	}

	link.Advance(in.Planner.RTT) // the single stream-open round trip

	for i := range in.Chunks {
		ch := in.Chunks[i]
		choice, err := in.Planner.Choose(i, link.Now()-start, est.Estimate(), in.Chunks)
		if err != nil {
			return nil, err
		}

		var abandoned int64
		transferStart := link.Now()
	attempt:
		for {
			total := choiceBytes(ch, choice)
			var sent int64
			frames := 0
			for sent < total {
				n := total - sent
				if n > in.FrameBytes {
					n = in.FrameBytes
				}
				dur, err := link.Transfer(n)
				if err != nil {
					return nil, fmt.Errorf("streamer: chunk %d: %w", i, err)
				}
				est.Observe(n, dur)
				sent += n
				frames++
				if frames%decisionEvery != 0 || sent >= total {
					continue
				}
				// Decision point: would the planner now pick something
				// cheaper than finishing this chunk?
				fresh, err := in.Planner.Choose(i, link.Now()-start, est.Estimate(), in.Chunks)
				if err != nil {
					return nil, err
				}
				if fresh != choice && choiceBytes(ch, fresh) < total-sent {
					abandoned += sent
					res.Cancels++
					link.Advance(in.Planner.RTT) // the cancel round trip
					choice = fresh
					continue attempt
				}
			}
			break
		}

		bytes := choiceBytes(ch, choice)
		var compute time.Duration
		if choice.Text {
			compute = ch.Recompute
		} else {
			compute = in.Device.DecodeTime(bytes)
		}
		transferEnd := link.Now()
		dur := transferEnd - transferStart

		if in.DisablePipeline && !choice.Text {
			link.Advance(compute)
			ready = link.Now()
		} else {
			ready = maxTime(ready, transferEnd) + compute
		}

		res.Decisions = append(res.Decisions, ChunkDecision{
			Chunk: i, Choice: choice, Bytes: bytes, Abandoned: abandoned,
			Transfer: dur, Compute: compute, Throughput: est.Estimate(),
		})
		res.BytesSent += bytes + abandoned
		res.AbandonedBytes += abandoned
		res.NetworkTime += dur
		res.ComputeTime += compute
	}

	res.SuffixTime = in.Model.MarginalPrefillTime(in.TotalTokens, suffix, in.Device, share)
	ttftEnd := maxTime(link.Now(), ready) + res.SuffixTime
	res.TTFT = ttftEnd - start
	res.SLOMet = in.Planner.SLO <= 0 || res.TTFT <= in.Planner.SLO
	return res, nil
}

func maxTime(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
