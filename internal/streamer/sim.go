package streamer

import (
	"fmt"
	"time"

	"repro/internal/llm"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// SimInput describes one simulated context-loading request.
type SimInput struct {
	// Chunks is the per-chunk metadata (BuildChunkInfos derives it from a
	// stored context's metadata plus the cost model).
	Chunks []ChunkInfo
	// TotalTokens is the context length.
	TotalTokens int
	// Link is the virtual-time link the request streams over.
	Link *netsim.Link
	// Planner holds the adaptation policy.
	Planner Planner
	// Model and Device drive compute-time accounting.
	Model  llm.Config
	Device llm.Device
	// Share is the fraction of the device this request gets (1/n under n
	// concurrent requests). Zero means 1.
	Share float64
	// SuffixTokens is the user prompt length prefilled after the context
	// loads (the query itself; footnote 4: the remaining forward pass is
	// marginal). Zero means 32.
	SuffixTokens int
	// DisablePipeline turns off the transmission/decode pipelining of §6
	// (for the Fig 14a breakdown ablation).
	DisablePipeline bool
}

// ChunkDecision records what happened to one chunk in a run.
type ChunkDecision struct {
	Chunk      int
	Choice     Choice
	Bytes      int64         // bytes sent on the wire
	Transfer   time.Duration // network time for this chunk
	Compute    time.Duration // decode or recompute time
	Throughput float64       // measured bits/s
}

// SimResult is the outcome of one simulated request.
type SimResult struct {
	TTFT      time.Duration
	Decisions []ChunkDecision
	// BytesSent is the total on-wire size (the "size of KV cache" metric).
	BytesSent int64
	// NetworkTime is the cumulative transfer time; ComputeTime the
	// cumulative decode/recompute time (some of it overlapped); SuffixTime
	// the prompt prefill after loading.
	NetworkTime, ComputeTime, SuffixTime time.Duration
	// SLOMet reports whether TTFT ≤ SLO (always true when SLO is unset).
	SLOMet bool
}

// TextOnly reports whether every chunk fell back to text.
func (r *SimResult) TextOnly() bool {
	for _, d := range r.Decisions {
		if !d.Choice.Text {
			return false
		}
	}
	return len(r.Decisions) > 0
}

// BuildChunkInfos derives the planner's chunk metadata from a stored
// context's metadata and the compute cost model. share is the GPU share
// used for recompute estimates.
func BuildChunkInfos(meta storage.ContextMeta, model llm.Config, dev llm.Device, share float64) ([]ChunkInfo, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	out := make([]ChunkInfo, meta.NumChunks())
	prefix := 0
	for i := range out {
		info := ChunkInfo{Tokens: meta.ChunkTokens[i]}
		info.SizesByLevel = make([]int64, meta.Levels)
		for lv := 0; lv < meta.Levels; lv++ {
			info.SizesByLevel[lv] = meta.SizesBytes[lv][i]
		}
		if len(meta.TextBytes) > 0 {
			info.TextBytes = meta.TextBytes[i]
		} else {
			info.TextBytes = int64(meta.ChunkTokens[i]) * llm.TextBytesPerToken
		}
		info.Recompute = model.MarginalPrefillTime(prefix, meta.ChunkTokens[i], dev, share)
		prefix += meta.ChunkTokens[i]
		out[i] = info
	}
	return out, nil
}

// Simulate runs one context-loading request in virtual time, applying the
// planner per chunk, pipelining decode with transmission, and accounting
// TTFT as the paper defines it: from request arrival to the first output
// token (KV load + prompt prefill).
func Simulate(in SimInput) (*SimResult, error) {
	if len(in.Chunks) == 0 {
		return nil, fmt.Errorf("streamer: no chunks to stream")
	}
	if in.Link == nil {
		return nil, fmt.Errorf("streamer: nil link")
	}
	share := in.Share
	if share <= 0 || share > 1 {
		share = 1
	}
	suffix := in.SuffixTokens
	if suffix == 0 {
		suffix = 32
	}

	link := in.Link
	start := link.Now()
	// ready is the virtual time at which every chunk so far is decoded (or
	// recomputed) and resident in GPU memory.
	ready := start
	var throughput float64 // ≤0: unknown
	res := &SimResult{}

	for i := range in.Chunks {
		elapsed := link.Now() - start
		choice, err := in.Planner.Choose(i, elapsed, throughput, in.Chunks)
		if err != nil {
			return nil, err
		}
		ch := in.Chunks[i]

		var bytes int64
		var compute time.Duration
		if choice.Text {
			bytes = ch.TextBytes
			compute = ch.Recompute
		} else {
			bytes = ch.SizesByLevel[choice.Level]
			compute = in.Device.DecodeTime(bytes)
		}

		link.Advance(in.Planner.RTT)
		dur, err := link.Transfer(bytes)
		if err != nil {
			return nil, fmt.Errorf("streamer: chunk %d: %w", i, err)
		}
		transferEnd := link.Now()
		throughput = netsim.Throughput(bytes, dur)

		if in.DisablePipeline && !choice.Text {
			// Serial decode blocks the link (no overlap with the next
			// chunk's transmission).
			link.Advance(compute)
			ready = link.Now()
		} else {
			// Decode/recompute of chunk i overlaps transfer of chunk i+1,
			// but depends on chunk i's arrival and chunk i−1's readiness.
			ready = maxTime(ready, transferEnd) + compute
		}

		res.Decisions = append(res.Decisions, ChunkDecision{
			Chunk: i, Choice: choice, Bytes: bytes,
			Transfer: dur, Compute: compute, Throughput: throughput,
		})
		res.BytesSent += bytes
		res.NetworkTime += dur
		res.ComputeTime += compute
	}

	res.SuffixTime = in.Model.MarginalPrefillTime(in.TotalTokens, suffix, in.Device, share)
	ttftEnd := maxTime(link.Now(), ready) + res.SuffixTime
	res.TTFT = ttftEnd - start
	res.SLOMet = in.Planner.SLO <= 0 || res.TTFT <= in.Planner.SLO
	return res, nil
}

func maxTime(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
