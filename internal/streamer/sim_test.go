package streamer

import (
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/netsim"
	"repro/internal/storage"
)

func simMeta() storage.ContextMeta {
	return storage.ContextMeta{
		ContextID:   "sim-1",
		Model:       "Mistral-7B",
		TokenCount:  6000,
		ChunkTokens: []int{1500, 1500, 1500, 1500},
		Levels:      4,
		// Sizes mimic CacheGen on Mistral-7B: ~28 MB per 1500-token chunk
		// at the default level.
		SizesBytes: [][]int64{
			{45e6, 45e6, 45e6, 45e6},
			{28e6, 28e6, 28e6, 28e6},
			{18e6, 18e6, 18e6, 18e6},
			{11e6, 11e6, 11e6, 11e6},
		},
		TextBytes: []int64{6000, 6000, 6000, 6000},
	}
}

func simInput(t *testing.T, trace netsim.Trace, p Planner) SimInput {
	t.Helper()
	model := llm.Mistral7B()
	dev := llm.A40x4()
	chunks, err := BuildChunkInfos(simMeta(), model, dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	return SimInput{
		Chunks:      chunks,
		TotalTokens: 6000,
		Link:        netsim.NewLink(trace),
		Planner:     p,
		Model:       model,
		Device:      dev,
	}
}

func TestBuildChunkInfos(t *testing.T) {
	model := llm.Mistral7B()
	dev := llm.A40x4()
	chunks, err := BuildChunkInfos(simMeta(), model, dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 4 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	// Later chunks attend over longer prefixes, so recompute grows.
	for i := 1; i < len(chunks); i++ {
		if chunks[i].Recompute <= chunks[i-1].Recompute {
			t.Errorf("recompute not increasing: chunk %d %v ≤ chunk %d %v",
				i, chunks[i].Recompute, i-1, chunks[i-1].Recompute)
		}
	}
	bad := simMeta()
	bad.ChunkTokens[0] = 0
	if _, err := BuildChunkInfos(bad, model, dev, 1); err == nil {
		t.Error("invalid meta accepted")
	}
}

func TestSimulateFixedBandwidth(t *testing.T) {
	// 112 MB at the default level over 3 Gbps ≈ 0.30 s transfer + decode +
	// suffix prefill: TTFT well under a second — the Fig 8 regime.
	in := simInput(t, netsim.Constant(netsim.Gbps(3)), Planner{Adapt: false, DefaultLevel: 1})
	res, err := Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.TTFT <= 0 || res.TTFT > time.Second {
		t.Errorf("TTFT = %v, want (0, 1s]", res.TTFT)
	}
	if res.BytesSent != 4*28e6 {
		t.Errorf("BytesSent = %d", res.BytesSent)
	}
	if len(res.Decisions) != 4 {
		t.Errorf("decisions: %v", res.Decisions)
	}
	if !res.SLOMet {
		t.Error("SLO unset should always report met")
	}
}

func TestSimulateValidation(t *testing.T) {
	in := simInput(t, netsim.Constant(1e9), Planner{})
	in.Chunks = nil
	if _, err := Simulate(in); err == nil {
		t.Error("no chunks accepted")
	}
	in = simInput(t, netsim.Constant(1e9), Planner{})
	in.Link = nil
	if _, err := Simulate(in); err == nil {
		t.Error("nil link accepted")
	}
}

func TestSimulateTTFTDecreasesWithBandwidth(t *testing.T) {
	var prev time.Duration = 1 << 60
	for _, g := range []float64{0.5, 1, 3, 10, 50} {
		in := simInput(t, netsim.Constant(netsim.Gbps(g)), Planner{Adapt: false, DefaultLevel: 1})
		res, err := Simulate(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.TTFT >= prev {
			t.Errorf("TTFT at %v Gbps (%v) not below %v", g, res.TTFT, prev)
		}
		prev = res.TTFT
	}
}

// TestSimulateFig7Adaptation replays the Fig 7 scenario: a ~1.2 GB stream
// under the 2→0.2→1 Gbps trace with a 4 s SLO. The context is long enough
// (16.5K tokens) that recomputing everything from text busts the SLO on
// its own, so the streamer must genuinely mix configurations. The adaptive
// run must beat the non-adaptive one and land near the SLO; the
// non-adaptive one must miss it badly.
func TestSimulateFig7Adaptation(t *testing.T) {
	meta := storage.ContextMeta{
		ContextID:   "fig7",
		Model:       "Mistral-7B",
		TokenCount:  16500,
		ChunkTokens: make([]int, 11),
		Levels:      4,
		SizesBytes:  make([][]int64, 4),
		TextBytes:   make([]int64, 11),
	}
	perChunk := []int64{180e6, 112e6, 72e6, 44e6}
	for lv := range meta.SizesBytes {
		meta.SizesBytes[lv] = make([]int64, 11)
		for i := range meta.SizesBytes[lv] {
			meta.SizesBytes[lv][i] = perChunk[lv]
		}
	}
	for i := range meta.ChunkTokens {
		meta.ChunkTokens[i] = 1500
		meta.TextBytes[i] = 6000
	}
	model := llm.Mistral7B()
	dev := llm.A40x4()
	chunks, err := BuildChunkInfos(meta, model, dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Precondition of the scenario: full text recompute alone misses the
	// 4 s SLO, so text is not a free lunch at t=0.
	var recompute time.Duration
	for _, ch := range chunks {
		recompute += ch.Recompute
	}
	if recompute <= 4*time.Second {
		t.Fatalf("scenario broken: full recompute %v fits the SLO", recompute)
	}

	run := func(adapt bool) *SimResult {
		in := SimInput{
			Chunks:      chunks,
			TotalTokens: meta.TokenCount,
			Link:        netsim.NewLink(netsim.Figure7Trace()),
			Planner: Planner{
				Adapt: adapt, SLO: 4 * time.Second, DefaultLevel: 1,
				PriorBandwidth: netsim.Gbps(2),
			},
			Model:  model,
			Device: dev,
		}
		res, err := Simulate(in)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	adaptive := run(true)
	static := run(false)
	if static.SLOMet {
		t.Errorf("non-adaptive run met the SLO (TTFT %v) — trace too easy", static.TTFT)
	}
	if adaptive.TTFT >= static.TTFT {
		t.Errorf("adaptation did not help: adaptive %v vs static %v", adaptive.TTFT, static.TTFT)
	}
	// §5.3: the reaction is delayed by at most one chunk, so the worst
	// case overshoot is one chunk sent at the pre-drop level through the
	// post-drop bandwidth (~3 s here for a 72 MB chunk at 0.2 Gbps).
	if adaptive.TTFT > 7*time.Second {
		t.Errorf("adaptive TTFT %v beyond SLO plus one-chunk reaction delay", adaptive.TTFT)
	}
	// The run must have mixed KV streaming with the text fallback
	// ("switch to KV compute", Fig 7).
	var sawLevel, sawText bool
	for _, d := range adaptive.Decisions {
		if d.Choice.Text {
			sawText = true
		} else {
			sawLevel = true
		}
	}
	if !sawLevel || !sawText {
		t.Errorf("expected mixed configurations, got %+v", adaptive.Decisions)
	}
}

func TestSimulateTextFallbackUnderStarvation(t *testing.T) {
	// At 0.05 Gbps even the smallest level (11 MB ⇒ 1.76 s/chunk) busts a
	// 2 s SLO for 4 chunks; text recompute (~1.3 s total) fits.
	in := simInput(t, netsim.Constant(netsim.Gbps(0.05)),
		Planner{Adapt: true, SLO: 2 * time.Second, DefaultLevel: 1, PriorBandwidth: netsim.Gbps(0.05)})
	res, err := Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TextOnly() {
		t.Errorf("expected all-text fallback, got %+v", res.Decisions)
	}
	if !res.SLOMet {
		t.Errorf("text fallback missed SLO: %v", res.TTFT)
	}
}

func TestSimulatePipeliningHelps(t *testing.T) {
	slow := llm.A40x4()
	slow.DecodeBW = 2e8 // make decode substantial so overlap matters
	mk := func(disable bool) time.Duration {
		model := llm.Mistral7B()
		chunks, err := BuildChunkInfos(simMeta(), model, slow, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(SimInput{
			Chunks: chunks, TotalTokens: 6000,
			Link:            netsim.NewLink(netsim.Constant(netsim.Gbps(2))),
			Planner:         Planner{Adapt: false, DefaultLevel: 1},
			Model:           model,
			Device:          slow,
			DisablePipeline: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TTFT
	}
	piped := mk(false)
	serial := mk(true)
	if piped >= serial {
		t.Errorf("pipelining did not help: piped %v vs serial %v", piped, serial)
	}
}

func TestSimulateShareSlowsCompute(t *testing.T) {
	in := simInput(t, netsim.Constant(netsim.Gbps(3)), Planner{Adapt: false, DefaultLevel: 1})
	full, err := Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	in2 := simInput(t, netsim.Constant(netsim.Gbps(3)), Planner{Adapt: false, DefaultLevel: 1})
	in2.Share = 0.1
	shared, err := Simulate(in2)
	if err != nil {
		t.Fatal(err)
	}
	if shared.SuffixTime <= full.SuffixTime {
		t.Error("device sharing should slow the suffix prefill")
	}
}

func TestSimulateThroughputMeasurement(t *testing.T) {
	in := simInput(t, netsim.Constant(netsim.Gbps(2)), Planner{Adapt: false, DefaultLevel: 1})
	res, err := Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Decisions {
		if d.Throughput < netsim.Gbps(1.9) || d.Throughput > netsim.Gbps(2.1) {
			t.Errorf("chunk %d measured %.2g bps, want ≈2 Gbps", d.Chunk, d.Throughput)
		}
	}
}
