package streamer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// StreamSource is a ChunkSource that additionally speaks the multiplexed
// server-push stream protocol: a transport.Client (one connection) or a
// cluster.Pool (a fleet with failover). A Fetcher whose Source implements
// it streams frame-by-frame and steers mid-chunk; otherwise it falls
// back to per-chunk request/response.
type StreamSource interface {
	ChunkSource
	OpenChunkStream(ctx context.Context, req transport.StreamRequest) (transport.ChunkStream, error)
}

// DefaultDecisionFrames is how many DATA frames arrive between
// adaptation decision points when the Fetcher does not set one. At the
// 64 KiB default frame size this re-plans every 256 KB — dozens of
// times inside a paper-sized chunk, against once per chunk before.
const DefaultDecisionFrames = 4

// levelChoice maps a wire delivery level to the planner's Choice.
func levelChoice(level int) Choice {
	if level == storage.TextLevel {
		return Choice{Text: true}
	}
	return Choice{Level: core.Level(level)}
}

// choiceLevel maps a planner Choice to its wire delivery level.
func choiceLevel(c Choice) int {
	if c.Text {
		return storage.TextLevel
	}
	return int(c.Level)
}

// choiceBytes is a chunk's payload size under a choice.
func choiceBytes(info ChunkInfo, c Choice) int64 {
	if c.Text {
		return info.TextBytes
	}
	return info.SizesByLevel[c.Level]
}

// streamChunks builds the manifest slice a stream open carries: every
// stored real level plus the text pseudo-level, per suffix chunk.
func streamChunks(man storage.Manifest, fromChunk, n int) ([]transport.StreamChunk, error) {
	chunks := make([]transport.StreamChunk, n)
	for si := 0; si < n; si++ {
		idx := fromChunk + si
		hashes := map[int]string{}
		for lv := 0; lv < man.Meta.Levels; lv++ {
			h, err := man.ChunkHash(lv, idx)
			if err != nil {
				return nil, fmt.Errorf("streamer: %w", err)
			}
			hashes[lv] = h
		}
		if h, err := man.ChunkHash(storage.TextLevel, idx); err == nil {
			hashes[storage.TextLevel] = h
		}
		chunks[si] = transport.StreamChunk{Index: idx, Hashes: hashes}
	}
	return chunks, nil
}

// readyChunk is one fully received chunk handed to the decode worker.
type readyChunk struct {
	si      int
	level   int
	payload []byte
}

// fetchStreaming is the multiplexed delivery path: one stream open, the
// server pushing ~frame-sized slices, a bandwidth estimator fed per
// frame, and the planner consulted at frame-batch decision points — it
// can re-level chunks that have not started (SWITCH) and abandon the
// in-flight chunk when resending it at the planner's fresh choice is
// cheaper than finishing it (CANCEL). Decode stays pipelined: completed
// chunks decode in order into dest (the PR 4 zero-copy path) on a worker
// while later frames keep arriving, and the bounded hand-off channel
// plus the stream's credit window make a slow decoder pause the sender
// instead of buffering the context.
func (f *Fetcher) fetchStreaming(ctx context.Context, src StreamSource, start time.Time,
	man storage.Manifest, suffixInfos []ChunkInfo, fromChunk, prefixTokens int,
	dest *tensor.KV, report *FetchReport) error {

	n := len(suffixInfos)
	chunks, err := streamChunks(man, fromChunk, n)
	if err != nil {
		return err
	}
	sp := telemetry.FromContext(ctx)
	tl := &fetchTimeline{}

	// The first decision has no measurement; the planner falls back to
	// its prior or default level.
	initial, err := f.Planner.Choose(0, time.Since(start), 0, suffixInfos)
	if err != nil {
		return fmt.Errorf("streamer: %w", err)
	}
	if sp != nil {
		sp.Event("plan", telemetry.Attr{Key: "chunk", Value: fromChunk}, telemetry.Attr{Key: "level", Value: initial.String()})
	}

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stream, err := src.OpenChunkStream(fctx, transport.StreamRequest{
		Chunks:    chunks,
		Level:     choiceLevel(initial),
		FrameSize: f.FrameSize,
	})
	if err != nil {
		return fmt.Errorf("streamer: opening chunk stream: %w", err)
	}
	defer stream.Close()

	depth := f.PipelineDepth
	if depth < 1 {
		depth = DefaultPipelineDepth
	}

	decisions := make([]ChunkDecision, n)

	// In-order decode worker: text recompute depends on the previously
	// assembled tokens, so chunks decode strictly by index while frames
	// for later chunks keep arriving.
	completed := make(chan readyChunk, depth)
	decodeErr := make(chan error, 1)
	go func() {
		defer close(decodeErr)
		offset := prefixTokens
		for si := 0; si < n; si++ {
			var rc readyChunk
			var ok bool
			select {
			case rc, ok = <-completed:
			case <-fctx.Done():
				return
			}
			if !ok {
				return // receive loop failed; it reports the error
			}
			choice := levelChoice(rc.level)
			dur, err := f.decodeInto(dest, offset, fromChunk+si, suffixInfos[si].Tokens, choice, rc.payload)
			if err != nil {
				if errors.Is(err, core.ErrCorruptChunk) {
					// The corrupt bytes are rejected, never decoded. The
					// stream's frames for this chunk are already consumed, so
					// the fetch fails here; the caller may retry on the
					// request/response path, which refetches by content hash.
					f.rejectCorrupt(report)
				}
				decodeErr <- fmt.Errorf("streamer: chunk %d: %w", fromChunk+si, err)
				cancel()
				return
			}
			decisions[si].Compute = dur
			kind, name := phaseDecode, "decode"
			if choice.Text {
				kind, name = phaseRecompute, "recompute"
			}
			decodeEnd := time.Now()
			var attrs []telemetry.Attr
			if sp != nil {
				attrs = []telemetry.Attr{{Key: "chunk", Value: fromChunk + si}, {Key: "level", Value: choice.String()}}
			}
			tl.add(sp, kind, name, decodeEnd.Add(-dur), decodeEnd, attrs)
			offset += suffixInfos[si].Tokens
		}
	}()

	window := f.EstimatorWindow
	if window <= 0 {
		window = netsim.DefaultEstimatorWindow
	}
	est := netsim.NewEstimator(window)
	est.SetGauge(f.BandwidthGauge)
	decisionEvery := f.DecisionFrames
	if decisionEvery <= 0 {
		decisionEvery = DefaultDecisionFrames
	}

	recvErr := func() error { // the receive loop proper
		curLevel := choiceLevel(initial) // stream level for not-yet-started chunks
		var (
			buf           []byte
			asmLevel      int
			asmTotal      int64
			chunkFirst    time.Time // first frame of the chunk, any attempt
			lastFrame     = time.Now()
			framesSince   int
			cancelPending = false // a cancel for the in-flight chunk is in the air
			abandoned     int64
			// Time this loop spent blocked handing completed chunks to the
			// decoder. When decode falls behind PipelineDepth, credit dries
			// up and the sender pauses; that pause rides on the next
			// frame's arrival gap and must not be read as link slowness.
			stall, chunkStall time.Duration
		)
		for si := 0; si < n; {
			frame, err := stream.Recv(fctx)
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("streamer: stream ended after %d of %d chunks", si, n)
			}
			if err != nil {
				return fmt.Errorf("streamer: chunk stream: %w", err)
			}
			// Wire arrival time, stamped by the connection's reader (frames
			// queued in the inbox keep accurate timestamps), minus the time
			// this loop itself spent blocked on the decoder — the sender's
			// credit pause surfaces in the first gap after a stall, and
			// over-subtraction only skips the sample (Observe ignores ≤0).
			now := frame.Arrived
			if now.IsZero() {
				now = time.Now()
			}
			prev := lastFrame
			est.Observe(int64(len(frame.Data)), now.Sub(prev)-stall)
			if frame.Pos != si {
				return fmt.Errorf("streamer: stream delivered position %d, expected %d", frame.Pos, si)
			}
			if buf == nil {
				// The chunk's transfer clock starts where the previous
				// frame ended, so its own first frame's wire time counts —
				// minus any decode-handoff stall inside that first gap.
				chunkFirst = prev
				chunkStall = stall
			}
			stall = 0
			lastFrame = now
			if frame.Offset == 0 {
				if buf != nil && asmLevel != frame.Level {
					// The cancel landed: the old level's prefix is waste.
					abandoned += int64(len(buf))
				}
				buf = make([]byte, 0, frame.Total)
				asmLevel = frame.Level
				asmTotal = frame.Total
				cancelPending = false
			}
			buf = append(buf, frame.Data...)
			report.BytesReceived += int64(len(frame.Data))
			report.addLevelBytes(levelChoice(frame.Level).String(), int64(len(frame.Data)))

			if frame.Last {
				transfer := now.Sub(chunkFirst) - chunkStall
				if transfer < 0 {
					transfer = 0
				}
				decisions[si] = ChunkDecision{
					Chunk:      fromChunk + si,
					Choice:     levelChoice(asmLevel),
					Bytes:      int64(len(buf)),
					Abandoned:  abandoned,
					Transfer:   transfer,
					Throughput: est.Estimate(),
				}
				// The timeline takes the chunk's raw wall interval (first to
				// last frame, stall included): any overlap with the decode
				// worker's intervals — which is what the stall is — comes
				// back out in apply()'s exclusive attribution. The stall-
				// subtracted figure stays in Decisions[].Transfer.
				var attrs []telemetry.Attr
				if sp != nil {
					attrs = []telemetry.Attr{
						{Key: "chunk", Value: fromChunk + si},
						{Key: "level", Value: levelChoice(asmLevel).String()},
						{Key: "bytes", Value: len(buf)},
					}
				}
				tl.add(sp, phaseTransfer, "transfer", chunkFirst, now, attrs)
				pushStart := time.Now()
				select {
				case completed <- readyChunk{si: si, level: asmLevel, payload: buf}:
				case <-fctx.Done():
					return fmt.Errorf("streamer: %w", fctx.Err())
				}
				stall += time.Since(pushStart)
				si++
				buf = nil
				abandoned = 0
				framesSince = 0
				continue
			}

			framesSince++
			if framesSince < decisionEvery {
				continue
			}
			framesSince = 0
			tput := est.Estimate()
			if tput <= 0 {
				continue
			}
			elapsed := time.Since(start)
			// Re-level chunks that have not started.
			if si+1 < n {
				next, err := f.Planner.Choose(si+1, elapsed, tput, suffixInfos)
				if err != nil {
					return fmt.Errorf("streamer: %w", err)
				}
				if lv := choiceLevel(next); lv != curLevel {
					if err := stream.Switch(lv); err != nil {
						return fmt.Errorf("streamer: switch: %w", err)
					}
					curLevel = lv
					report.Switches++
					if sp != nil {
						sp.Event("switch", telemetry.Attr{Key: "level", Value: levelChoice(lv).String()},
							telemetry.Attr{Key: "bandwidth_bps", Value: tput})
					}
				}
			}
			// Abandon the in-flight chunk when resending it whole at the
			// planner's fresh choice is cheaper than finishing it.
			if !cancelPending && buf != nil {
				fresh, err := f.Planner.Choose(si, elapsed, tput, suffixInfos)
				if err != nil {
					return fmt.Errorf("streamer: %w", err)
				}
				if lv := choiceLevel(fresh); lv != asmLevel {
					remaining := asmTotal - int64(len(buf))
					if choiceBytes(suffixInfos[si], fresh) < remaining {
						if err := stream.Cancel(si, lv); err != nil {
							return fmt.Errorf("streamer: cancel: %w", err)
						}
						cancelPending = true
						report.Cancels++
						if sp != nil {
							sp.Event("cancel", telemetry.Attr{Key: "chunk", Value: fromChunk + si},
								telemetry.Attr{Key: "level", Value: levelChoice(lv).String()})
						}
					}
				}
			}
		}
		return nil
	}()
	if recvErr != nil {
		cancel()
		// A decode failure cancels fctx, which surfaces in the receive
		// loop as a context error; the worker's error is the root cause
		// and must win over the cancellation it triggered.
		if derr := <-decodeErr; derr != nil {
			return derr
		}
		return recvErr
	}
	if err := <-decodeErr; err != nil {
		return err
	}

	tl.apply(report)
	report.Decisions = decisions
	report.Bandwidth = est.Estimate()
	report.Streamed = true
	return nil
}
