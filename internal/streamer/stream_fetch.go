package streamer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// StreamSource is a ChunkSource that additionally speaks the multiplexed
// server-push stream protocol: a transport.Client (one connection) or a
// cluster.Pool (a fleet with failover). A Fetcher whose Source implements
// it streams frame-by-frame and steers mid-chunk; otherwise it falls
// back to per-chunk request/response.
type StreamSource interface {
	ChunkSource
	OpenChunkStream(ctx context.Context, req transport.StreamRequest) (transport.ChunkStream, error)
}

// DefaultDecisionFrames is how many DATA frames arrive between
// adaptation decision points when the Fetcher does not set one. At the
// 64 KiB default frame size this re-plans every 256 KB — dozens of
// times inside a paper-sized chunk, against once per chunk before.
const DefaultDecisionFrames = 4

// levelChoice maps a wire delivery level to the planner's Choice.
func levelChoice(level int) Choice {
	if level == storage.TextLevel {
		return Choice{Text: true}
	}
	return Choice{Level: core.Level(level)}
}

// choiceLevel maps a planner Choice to its wire delivery level.
func choiceLevel(c Choice) int {
	if c.Text {
		return storage.TextLevel
	}
	return int(c.Level)
}

// choiceBytes is a chunk's payload size under a choice.
func choiceBytes(info ChunkInfo, c Choice) int64 {
	if c.Text {
		return info.TextBytes
	}
	return info.SizesByLevel[c.Level]
}

// streamChunks builds the manifest slice a stream open carries: every
// stored real level plus the text pseudo-level, per suffix chunk.
func streamChunks(man storage.Manifest, fromChunk, n int) ([]transport.StreamChunk, error) {
	chunks := make([]transport.StreamChunk, n)
	for si := 0; si < n; si++ {
		idx := fromChunk + si
		hashes := map[int]string{}
		for lv := 0; lv < man.Meta.Levels; lv++ {
			h, err := man.ChunkHash(lv, idx)
			if err != nil {
				return nil, fmt.Errorf("streamer: %w", err)
			}
			hashes[lv] = h
		}
		if h, err := man.ChunkHash(storage.TextLevel, idx); err == nil {
			hashes[storage.TextLevel] = h
		}
		chunks[si] = transport.StreamChunk{Index: idx, Hashes: hashes}
	}
	return chunks, nil
}

// laneAttempt tracks one delivery attempt's out-of-order lane decodes
// for a chunk. A mid-stream CANCEL abandons the attempt and starts a new
// one for the same chunk; both write the same destination token rows, so
// a new attempt's lanes wait for the abandoned chain to drain first.
type laneAttempt struct {
	prev     *laneAttempt // abandoned predecessor attempt, if any
	nextLane int          // receive-loop cursor: lanes [0,nextLane) dispatched
	wg       sync.WaitGroup

	mu          sync.Mutex
	err         error // first lane decode error (abandoned attempts' errors are discarded)
	first, last time.Time
	busy        time.Duration // summed lane decode time (can exceed last−first)
}

// waitChain joins this attempt and every abandoned predecessor.
// Nil-safe.
func (a *laneAttempt) waitChain() {
	for ; a != nil; a = a.prev {
		a.wg.Wait()
	}
}

// chunkDone is one fully received chunk handed to the in-order
// finalizer. For a bitstream chunk the coder lanes are already decoding
// (or decoded) out of order — the finalizer only joins them and settles
// the chunk's accounting. A text chunk recomputes in the finalizer
// itself, which is what keeps recompute strictly behind the assembled
// prefix.
type chunkDone struct {
	si      int
	level   int
	payload []byte
	att     *laneAttempt // nil for a text chunk with no abandoned bitstream attempt
}

// fetchStreaming is the multiplexed delivery path: one stream open, the
// server pushing ~frame-sized slices, a bandwidth estimator fed per
// frame, and the planner consulted at frame-batch decision points — it
// can re-level chunks that have not started (SWITCH) and abandon the
// in-flight chunk when resending it at the planner's fresh choice is
// cheaper than finishing it (CANCEL). Decode is out of order at lane
// granularity: the container header parses from the first frames, and
// every coder lane whose payload bytes have landed is handed to the
// codec's worker pool immediately — decode of chunk i's early lanes
// overlaps the transfer of its later ones and of chunk i+1. An in-order
// finalizer joins each chunk's lanes (text chunks recompute there, after
// their prefix is assembled), and the bounded hand-off channel plus the
// stream's credit window make a slow decoder pause the sender instead of
// buffering the context.
func (f *Fetcher) fetchStreaming(ctx context.Context, src StreamSource, start time.Time,
	man storage.Manifest, suffixInfos []ChunkInfo, fromChunk, prefixTokens int,
	dest *tensor.KV, report *FetchReport) error {

	n := len(suffixInfos)
	chunks, err := streamChunks(man, fromChunk, n)
	if err != nil {
		return err
	}
	sp := telemetry.FromContext(ctx)
	tl := &fetchTimeline{}

	// The first decision has no measurement; the planner falls back to
	// its prior or default level.
	initial, err := f.policy().Choose(0, time.Since(start), 0, suffixInfos)
	if err != nil {
		return fmt.Errorf("streamer: %w", err)
	}
	if sp != nil {
		sp.Event("plan", telemetry.Attr{Key: "chunk", Value: fromChunk}, telemetry.Attr{Key: "level", Value: initial.String()})
	}

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stream, err := src.OpenChunkStream(fctx, transport.StreamRequest{
		Chunks:    chunks,
		Level:     choiceLevel(initial),
		FrameSize: f.FrameSize,
		Format:    man.Meta.Format,
	})
	if err != nil {
		return fmt.Errorf("streamer: opening chunk stream: %w", err)
	}
	defer stream.Close()

	depth := f.PipelineDepth
	if depth < 1 {
		depth = DefaultPipelineDepth
	}

	decisions := make([]ChunkDecision, n)
	// offsets[si] is chunk si's destination token offset, precomputed so
	// lanes dispatched out of order know where their rows land.
	offsets := make([]int, n)
	for si, off := 0, prefixTokens; si < n; si++ {
		offsets[si] = off
		off += suffixInfos[si].Tokens
	}

	// dispatch hands every lane whose payload has fully landed to the
	// codec pool. data is a length-snapshot of the chunk's assembly
	// buffer: its backing array was allocated at the container's full
	// size, so later appends extend past the snapshot without moving it.
	// Lane intervals feed the timeline span-less; the finalizer records
	// the one chunk-level decode span.
	dispatch := func(si int, att *laneAttempt, p *core.ParsedChunk, data []byte) {
		for att.nextLane < p.Lanes() && len(data) >= p.LaneEnd(att.nextLane) {
			lane := att.nextLane
			att.nextLane++
			att.wg.Add(1)
			f.laneGaugeAdd(1)
			go func() {
				defer att.wg.Done()
				defer f.laneGaugeAdd(-1)
				att.prev.waitChain()
				begin := time.Now()
				err := f.Codec.DecodeLaneInto(dest, offsets[si], p, lane, data)
				end := time.Now()
				tl.add(nil, phaseDecode, "decode", begin, end, nil)
				att.mu.Lock()
				if err != nil && att.err == nil {
					att.err = err
				}
				if att.first.IsZero() || begin.Before(att.first) {
					att.first = begin
				}
				if end.After(att.last) {
					att.last = end
				}
				att.busy += end.Sub(begin)
				att.mu.Unlock()
			}()
		}
	}

	// In-order finalizer: joins each chunk's lane decodes by index (text
	// recompute depends on the previously assembled tokens) while frames
	// — and other chunks' lanes — keep going.
	completed := make(chan chunkDone, depth)
	decodeErr := make(chan error, 1)
	go func() {
		defer close(decodeErr)
		for range suffixInfos {
			var rc chunkDone
			var ok bool
			select {
			case rc, ok = <-completed:
			case <-fctx.Done():
				return
			}
			if !ok {
				return // receive loop failed; it reports the error
			}
			choice := levelChoice(rc.level)
			if choice.Text {
				// Order behind any abandoned bitstream attempt still
				// writing this chunk's rows, then recompute in place.
				rc.att.waitChain()
				dur, _, err := f.decodeInto(dest, offsets[rc.si], fromChunk+rc.si, suffixInfos[rc.si].Tokens, choice, rc.payload)
				if err != nil {
					if errors.Is(err, core.ErrCorruptChunk) {
						// The corrupt bytes are rejected, never decoded. The
						// stream's frames for this chunk are already consumed,
						// so the fetch fails here; the caller may retry on the
						// request/response path, which refetches by content
						// hash.
						f.rejectCorrupt(report)
					}
					decodeErr <- fmt.Errorf("streamer: chunk %d: %w", fromChunk+rc.si, err)
					cancel()
					return
				}
				decisions[rc.si].Compute = dur
				recEnd := time.Now()
				var attrs []telemetry.Attr
				if sp != nil {
					attrs = []telemetry.Attr{{Key: "chunk", Value: fromChunk + rc.si}, {Key: "level", Value: choice.String()}}
				}
				tl.add(sp, phaseRecompute, "recompute", recEnd.Add(-dur), recEnd, attrs)
				continue
			}
			rc.att.waitChain()
			rc.att.mu.Lock()
			err, first, last, busy := rc.att.err, rc.att.first, rc.att.last, rc.att.busy
			rc.att.mu.Unlock()
			if err != nil {
				if errors.Is(err, core.ErrCorruptChunk) {
					f.rejectCorrupt(report)
				}
				decodeErr <- fmt.Errorf("streamer: chunk %d: %w", fromChunk+rc.si, err)
				cancel()
				return
			}
			decisions[rc.si].Compute = busy
			if sp != nil {
				// One decode span per chunk, covering first lane start to
				// last lane end; the exclusive time attribution uses the
				// per-lane intervals already in the timeline.
				sp.Record("decode", first, last.Sub(first),
					telemetry.Attr{Key: "chunk", Value: fromChunk + rc.si},
					telemetry.Attr{Key: "level", Value: choice.String()},
					telemetry.Attr{Key: "lanes", Value: rc.att.nextLane})
			}
		}
	}()

	window := f.EstimatorWindow
	if window <= 0 {
		window = netsim.DefaultEstimatorWindow
	}
	est := netsim.NewEstimator(window)
	est.SetGauge(f.BandwidthGauge)
	decisionEvery := f.DecisionFrames
	if decisionEvery <= 0 {
		decisionEvery = DefaultDecisionFrames
	}

	recvErr := func() error { // the receive loop proper
		curLevel := choiceLevel(initial) // stream level for not-yet-started chunks
		var (
			buf           []byte
			asmLevel      int
			asmTotal      int64
			att           *laneAttempt      // current delivery attempt's lane tracker
			parsed        *core.ParsedChunk // container header, once enough bytes landed
			chunkFirst    time.Time         // first frame of the chunk, any attempt
			lastFrame     = time.Now()
			framesSince   int
			cancelPending = false // a cancel for the in-flight chunk is in the air
			abandoned     int64
			// Time this loop spent blocked handing completed chunks to the
			// decoder. When decode falls behind PipelineDepth, credit dries
			// up and the sender pauses; that pause rides on the next
			// frame's arrival gap and must not be read as link slowness.
			stall, chunkStall time.Duration
		)
		for si := 0; si < n; {
			frame, err := stream.Recv(fctx)
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("streamer: stream ended after %d of %d chunks", si, n)
			}
			if err != nil {
				return fmt.Errorf("streamer: chunk stream: %w", err)
			}
			// Wire arrival time, stamped by the connection's reader (frames
			// queued in the inbox keep accurate timestamps), minus the time
			// this loop itself spent blocked on the decoder — the sender's
			// credit pause surfaces in the first gap after a stall, and
			// over-subtraction only skips the sample (Observe ignores ≤0).
			now := frame.Arrived
			if now.IsZero() {
				now = time.Now()
			}
			prev := lastFrame
			est.Observe(int64(len(frame.Data)), now.Sub(prev)-stall)
			if frame.Pos != si {
				return fmt.Errorf("streamer: stream delivered position %d, expected %d", frame.Pos, si)
			}
			if buf == nil {
				// The chunk's transfer clock starts where the previous
				// frame ended, so its own first frame's wire time counts —
				// minus any decode-handoff stall inside that first gap.
				chunkFirst = prev
				chunkStall = stall
			}
			stall = 0
			lastFrame = now
			if frame.Offset == 0 {
				if buf != nil && asmLevel != frame.Level {
					// The cancel landed: the old level's prefix is waste.
					abandoned += int64(len(buf))
				}
				buf = make([]byte, 0, frame.Total)
				asmLevel = frame.Level
				asmTotal = frame.Total
				cancelPending = false
				parsed = nil
				if asmLevel != storage.TextLevel {
					// A fresh attempt chains behind any abandoned one:
					// both write the same destination rows. (A text
					// restart keeps the old chain as-is; the finalizer
					// orders the recompute behind it.)
					att = &laneAttempt{prev: att}
				}
			}
			buf = append(buf, frame.Data...)
			report.BytesReceived += int64(len(frame.Data))
			report.addLevelBytes(levelChoice(frame.Level).String(), int64(len(frame.Data)))

			// Out-of-order lane decode: parse the container header as soon
			// as its bytes are here, then hand each lane to the codec pool
			// the moment its payload range has fully landed.
			if asmLevel != storage.TextLevel {
				if parsed == nil {
					p, perr := f.Codec.ParseChunkPrefix(buf, int(asmTotal))
					switch {
					case perr == nil:
						hdr := p.Header
						if hdr.Index != fromChunk+si || hdr.TokenOffset != offsets[si] {
							return fmt.Errorf("streamer: chunk %d: chunk metadata mismatch: got (%d,%d), want (%d,%d)",
								fromChunk+si, hdr.Index, hdr.TokenOffset, fromChunk+si, offsets[si])
						}
						if hdr.Tokens != suffixInfos[si].Tokens {
							return fmt.Errorf("streamer: chunk %d: chunk has %d tokens, meta says %d",
								fromChunk+si, hdr.Tokens, suffixInfos[si].Tokens)
						}
						parsed = p
					case errors.Is(perr, core.ErrShortChunk):
						// Header still arriving; try again next frame.
					default:
						f.rejectCorrupt(report)
						return fmt.Errorf("streamer: chunk %d: %w", fromChunk+si, perr)
					}
				}
				if parsed != nil {
					dispatch(si, att, parsed, buf)
				}
			}

			if frame.Last {
				if asmLevel != storage.TextLevel && parsed == nil {
					// Every frame landed yet the container never parsed:
					// the wire total overstated the payload.
					f.rejectCorrupt(report)
					return fmt.Errorf("streamer: chunk %d: %w: container shorter than its advertised %d bytes",
						fromChunk+si, core.ErrCorruptChunk, asmTotal)
				}
				transfer := now.Sub(chunkFirst) - chunkStall
				if transfer < 0 {
					transfer = 0
				}
				// Write-through to the scheduler's RAM tier: the next plan
				// for a context sharing this chunk prices it locally.
				if f.Local != nil && asmLevel != storage.TextLevel {
					if h, herr := man.ChunkHash(asmLevel, fromChunk+si); herr == nil {
						f.Local.Put(h, buf)
					}
				}
				decisions[si] = ChunkDecision{
					Chunk:      fromChunk + si,
					Choice:     levelChoice(asmLevel),
					Bytes:      int64(len(buf)),
					Abandoned:  abandoned,
					Transfer:   transfer,
					Throughput: est.Estimate(),
					Source:     sourceLabel(levelChoice(asmLevel)),
				}
				// The timeline takes the chunk's raw wall interval (first to
				// last frame, stall included): any overlap with the decode
				// worker's intervals — which is what the stall is — comes
				// back out in apply()'s exclusive attribution. The stall-
				// subtracted figure stays in Decisions[].Transfer.
				var attrs []telemetry.Attr
				if sp != nil {
					attrs = []telemetry.Attr{
						{Key: "chunk", Value: fromChunk + si},
						{Key: "level", Value: levelChoice(asmLevel).String()},
						{Key: "bytes", Value: len(buf)},
					}
				}
				tl.add(sp, phaseTransfer, "transfer", chunkFirst, now, attrs)
				pushStart := time.Now()
				select {
				case completed <- chunkDone{si: si, level: asmLevel, payload: buf, att: att}:
				case <-fctx.Done():
					return fmt.Errorf("streamer: %w", fctx.Err())
				}
				stall += time.Since(pushStart)
				si++
				buf = nil
				att = nil
				parsed = nil
				abandoned = 0
				framesSince = 0
				continue
			}

			framesSince++
			if framesSince < decisionEvery {
				continue
			}
			framesSince = 0
			tput := est.Estimate()
			if tput <= 0 {
				continue
			}
			elapsed := time.Since(start)
			// Re-level chunks that have not started.
			if si+1 < n {
				next, err := f.policy().Choose(si+1, elapsed, tput, suffixInfos)
				if err != nil {
					return fmt.Errorf("streamer: %w", err)
				}
				if lv := choiceLevel(next); lv != curLevel {
					if err := stream.Switch(lv); err != nil {
						return fmt.Errorf("streamer: switch: %w", err)
					}
					curLevel = lv
					report.Switches++
					if sp != nil {
						sp.Event("switch", telemetry.Attr{Key: "level", Value: levelChoice(lv).String()},
							telemetry.Attr{Key: "bandwidth_bps", Value: tput})
					}
				}
			}
			// Abandon the in-flight chunk when resending it whole at the
			// planner's fresh choice is cheaper than finishing it.
			if !cancelPending && buf != nil {
				fresh, err := f.policy().Choose(si, elapsed, tput, suffixInfos)
				if err != nil {
					return fmt.Errorf("streamer: %w", err)
				}
				if lv := choiceLevel(fresh); lv != asmLevel {
					remaining := asmTotal - int64(len(buf))
					if choiceBytes(suffixInfos[si], fresh) < remaining {
						if err := stream.Cancel(si, lv); err != nil {
							return fmt.Errorf("streamer: cancel: %w", err)
						}
						cancelPending = true
						report.Cancels++
						if sp != nil {
							sp.Event("cancel", telemetry.Attr{Key: "chunk", Value: fromChunk + si},
								telemetry.Attr{Key: "level", Value: levelChoice(lv).String()})
						}
					}
				}
			}
		}
		return nil
	}()
	if recvErr != nil {
		cancel()
		// A decode failure cancels fctx, which surfaces in the receive
		// loop as a context error; the worker's error is the root cause
		// and must win over the cancellation it triggered.
		if derr := <-decodeErr; derr != nil {
			return derr
		}
		return recvErr
	}
	if err := <-decodeErr; err != nil {
		return err
	}

	tl.apply(report)
	report.Decisions = decisions
	report.Bandwidth = est.Estimate()
	report.Streamed = true
	return nil
}
