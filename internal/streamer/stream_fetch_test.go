package streamer

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/transport"
)

// TestFetchStreamedBitForBit: the multiplexed server-push path must
// reassemble exactly the KV the request/response path does — same
// bytes, same decode — on a static link at a fixed level.
func TestFetchStreamedBitForBit(t *testing.T) {
	s := newStack(t)
	mk := func(disable bool) *Fetcher {
		return &Fetcher{
			Source:           s.client,
			Codec:            s.codec,
			Model:            s.model,
			Device:           llm.A40x4(),
			Planner:          Planner{Adapt: false, DefaultLevel: 0},
			DisableStreaming: disable,
		}
	}
	ctx := context.Background()
	streamed, sRep, err := mk(false).Fetch(ctx, "ctx-1")
	if err != nil {
		t.Fatal(err)
	}
	legacy, lRep, err := mk(true).Fetch(ctx, "ctx-1")
	if err != nil {
		t.Fatal(err)
	}
	if !sRep.Streamed {
		t.Error("stream-capable source did not take the streaming path")
	}
	if lRep.Streamed {
		t.Error("DisableStreaming still streamed")
	}
	diff, err := streamed.MaxAbsDiff(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("streamed KV differs from request/response KV: max |Δ| = %g", diff)
	}
	if sRep.BytesReceived != lRep.BytesReceived {
		t.Errorf("streamed moved %d bytes, request/response %d", sRep.BytesReceived, lRep.BytesReceived)
	}
	if sRep.Bandwidth <= 0 {
		t.Error("streamed report has no bandwidth estimate")
	}
	if got := sRep.LevelBytes["L0"]; got != sRep.BytesReceived {
		t.Errorf("level byte counters: L0 = %d, want %d", got, sRep.BytesReceived)
	}
	if len(sRep.Decisions) != s.meta.NumChunks() {
		t.Errorf("streamed decisions = %d, want %d", len(sRep.Decisions), s.meta.NumChunks())
	}
	var totalTransfer time.Duration
	for _, d := range sRep.Decisions {
		if d.Choice.Text || d.Choice.Level != 0 {
			t.Errorf("chunk %d streamed at %s, want L0", d.Chunk, d.Choice)
		}
		// Per-chunk Transfer subtracts decode-handoff stalls and may
		// legitimately clamp to zero for a tiny chunk on loopback; it
		// must never be negative, and the fetch as a whole must have
		// measured wire time.
		if d.Throughput <= 0 || d.Transfer < 0 {
			t.Errorf("chunk %d missing transfer telemetry: %+v", d.Chunk, d)
		}
		totalTransfer += d.Transfer
	}
	if totalTransfer <= 0 {
		t.Error("no wire time measured across the whole streamed fetch")
	}
}

// TestFetchStreamedResident: the warm-prefix path streams only the cold
// suffix and still matches the cold fetch bit for bit.
func TestFetchStreamedResident(t *testing.T) {
	s := newStack(t)
	f := &Fetcher{
		Source:  s.client,
		Codec:   s.codec,
		Model:   s.model,
		Device:  llm.A40x4(),
		Planner: Planner{Adapt: false, DefaultLevel: 0},
	}
	ctx := context.Background()
	cold, _, err := f.Fetch(ctx, "ctx-1")
	if err != nil {
		t.Fatal(err)
	}
	resident, err := cold.SliceTokens(0, 160) // two whole chunks of 80
	if err != nil {
		t.Fatal(err)
	}
	warm, rep, err := f.FetchFrom(ctx, "ctx-1", resident)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResidentTokens != 160 || !rep.Streamed {
		t.Errorf("warm fetch: resident %d, streamed %v", rep.ResidentTokens, rep.Streamed)
	}
	if len(rep.Decisions) != s.meta.NumChunks()-2 {
		t.Errorf("warm fetch streamed %d chunks, want %d", len(rep.Decisions), s.meta.NumChunks()-2)
	}
	diff, err := warm.MaxAbsDiff(cold)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("warm streamed KV differs from cold: max |Δ| = %g", diff)
	}
}

// TestFetchStreamedAdaptiveUnderTrace runs the full adaptive loop over a
// live traced link: the fetch must succeed and the report must carry the
// frame-granularity telemetry.
func TestFetchStreamedAdaptiveUnderTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	s := newStack(t)
	trace, err := netsim.ParseTrace("40Mbps:150ms,2Mbps")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(s.store, transport.WithEgressTrace(trace))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	client, err := transport.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	f := &Fetcher{
		Source: client,
		Codec:  s.codec,
		Model:  s.model,
		Device: llm.A40x4(),
		Planner: Planner{
			Adapt: true, SLO: 2 * time.Second, DefaultLevel: 0,
			PriorBandwidth: 40e6,
		},
		FrameSize:      4 << 10,
		DecisionFrames: 2,
	}
	kv, rep, err := f.Fetch(context.Background(), "ctx-1")
	if err != nil {
		t.Fatal(err)
	}
	if kv.Tokens != len(s.tokens) {
		t.Fatalf("assembled %d tokens, want %d", kv.Tokens, len(s.tokens))
	}
	if !rep.Streamed || rep.Bandwidth <= 0 {
		t.Errorf("report = streamed %v bandwidth %.0f", rep.Streamed, rep.Bandwidth)
	}
	if len(rep.LevelBytes) == 0 {
		t.Error("no per-level byte counters")
	}
}

// synthetic chunk metadata for the virtual-time cliff comparison.
func cliffChunks(n int) []ChunkInfo {
	infos := make([]ChunkInfo, n)
	for i := range infos {
		infos[i] = ChunkInfo{
			Tokens:       1500,
			SizesByLevel: []int64{30e6, 15e6, 7.5e6},
			TextBytes:    6000,
			Recompute:    time.Second,
		}
	}
	return infos
}

// TestSimulateFramesBeatsChunkGranularityOnCliff is the X7 acceptance
// property in miniature: under a mid-chunk bandwidth cliff, the
// frame-granularity estimator (which cancels the doomed in-flight chunk)
// must beat the chunk-granularity estimator (which is blind until the
// chunk lands) on TTFT.
func TestSimulateFramesBeatsChunkGranularityOnCliff(t *testing.T) {
	chunks := cliffChunks(8)
	trace, err := netsim.ParseTrace("2Gbps:300ms,0.02Gbps")
	if err != nil {
		t.Fatal(err)
	}
	planner := Planner{
		Adapt: true, SLO: 4 * time.Second, DefaultLevel: 1,
		PriorBandwidth: netsim.Gbps(2), RTT: 20 * time.Millisecond,
	}
	base := SimInput{
		Chunks:      chunks,
		TotalTokens: 8 * 1500,
		Planner:     planner,
		Model:       llm.Mistral7B(),
		Device:      llm.A40x4(),
	}

	legacyIn := base
	legacyIn.Link = netsim.NewLink(trace)
	legacy, err := Simulate(legacyIn)
	if err != nil {
		t.Fatal(err)
	}

	frameIn := base
	frameIn.Link = netsim.NewLink(trace)
	frameIn.FrameBytes = 256 << 10
	frame, err := Simulate(frameIn)
	if err != nil {
		t.Fatal(err)
	}

	if frame.Cancels < 1 {
		t.Errorf("frame mode never cancelled the doomed in-flight chunk (cancels=%d)", frame.Cancels)
	}
	if frame.AbandonedBytes <= 0 {
		t.Errorf("frame mode reports no abandoned bytes despite %d cancels", frame.Cancels)
	}
	if frame.TTFT >= legacy.TTFT {
		t.Errorf("frame granularity TTFT %v not better than chunk granularity %v", frame.TTFT, legacy.TTFT)
	}
	// The win must be structural (the cancelled chunk's stall), not noise.
	if frame.TTFT > legacy.TTFT*7/10 {
		t.Errorf("frame TTFT %v vs legacy %v: expected a >30%% win from the cancel", frame.TTFT, legacy.TTFT)
	}
	t.Logf("cliff TTFT: chunk-granularity %v, frame-granularity %v (%d cancels, %.1f MB abandoned)",
		legacy.TTFT.Round(time.Millisecond), frame.TTFT.Round(time.Millisecond),
		frame.Cancels, float64(frame.AbandonedBytes)/1e6)
}

// TestSimulateFramesMatchesLegacyOnStableLink: with no bandwidth
// variation and adaptation off, frame mode moves the same bytes and
// lands within per-chunk RTT bookkeeping of the legacy model.
func TestSimulateFramesMatchesLegacyOnStableLink(t *testing.T) {
	chunks := cliffChunks(4)
	planner := Planner{Adapt: false, DefaultLevel: 1}
	base := SimInput{
		Chunks:      chunks,
		TotalTokens: 4 * 1500,
		Planner:     planner,
		Model:       llm.Mistral7B(),
		Device:      llm.A40x4(),
	}
	legacyIn := base
	legacyIn.Link = netsim.NewLink(netsim.Constant(netsim.Gbps(1)))
	legacy, err := Simulate(legacyIn)
	if err != nil {
		t.Fatal(err)
	}
	frameIn := base
	frameIn.Link = netsim.NewLink(netsim.Constant(netsim.Gbps(1)))
	frameIn.FrameBytes = 64 << 10
	frame, err := Simulate(frameIn)
	if err != nil {
		t.Fatal(err)
	}
	if frame.BytesSent != legacy.BytesSent {
		t.Errorf("frame mode moved %d bytes, legacy %d", frame.BytesSent, legacy.BytesSent)
	}
	if frame.Cancels != 0 || frame.AbandonedBytes != 0 {
		t.Errorf("stable link produced cancels: %d / %d bytes", frame.Cancels, frame.AbandonedBytes)
	}
	// Same transfers, same decode: TTFTs within a few percent.
	ratio := float64(frame.TTFT) / float64(legacy.TTFT)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("stable-link TTFT diverged: frame %v vs legacy %v", frame.TTFT, legacy.TTFT)
	}
}

// TestStreamChunksSkipsMissingText: contexts published without a text
// pseudo-level still stream (the planner just can't pick text).
func TestStreamChunksSkipsMissingText(t *testing.T) {
	man := storage.Manifest{
		Meta: storage.ContextMeta{
			ContextID: "x", Model: "m", TokenCount: 100,
			ChunkTokens: []int{50, 50}, Levels: 1,
			SizesBytes: [][]int64{{10, 10}},
		},
		Hashes: map[int][]string{0: {"a", "b"}},
	}
	chunks, err := streamChunks(man, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	if _, ok := chunks[0].Hashes[storage.TextLevel]; ok {
		t.Error("text hash invented for a context without one")
	}
	if chunks[1].Hashes[0] != "b" {
		t.Errorf("chunk 1 level-0 hash = %q", chunks[1].Hashes[0])
	}
}

// TestFetchStreamedSmallFramesLaneIdentity: with DATA frames far smaller
// than a chunk, the container header parses mid-transfer and coder lanes
// dispatch to the codec pool across many frames, out of order with later
// chunks' transfers. The assembled KV must still be bit-for-bit the
// request/response baseline's.
func TestFetchStreamedSmallFramesLaneIdentity(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()
	mk := func(disable bool) *Fetcher {
		return &Fetcher{
			Source: s.client, Codec: s.codec, Model: s.model, Device: llm.A40x4(),
			Planner:          Planner{Adapt: false, DefaultLevel: 1},
			DisableStreaming: disable,
			FrameSize:        256, // dozens of frames per chunk
			PipelineDepth:    3,
		}
	}
	streamed, rep, err := mk(false).Fetch(ctx, "ctx-1")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Streamed {
		t.Fatal("small-frame fetch did not stream")
	}
	legacy, _, err := mk(true).Fetch(ctx, "ctx-1")
	if err != nil {
		t.Fatal(err)
	}
	diff, err := streamed.MaxAbsDiff(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("lane-decoded streamed KV differs from baseline: max |Δ| = %g", diff)
	}
	for _, d := range rep.Decisions {
		if d.Compute <= 0 {
			t.Errorf("chunk %d reports no decode compute", d.Chunk)
		}
	}
}

// TestFetchMixedFormatContext: a store holding both container formats —
// v1 chunks published before the lane-interleaved v2 shipped next to v2
// chunks — must fetch transparently on both paths. The manifest is
// format-agnostic (content addresses only); each payload declares its
// own format.
func TestFetchMixedFormatContext(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()
	ref := mustDecodeReference(t, s) // direct decode, all chunks at L1

	// Re-encode chunks 1 and 3 (level 1) as legacy v1 containers and
	// splice them in under the original content addresses (PutChunk
	// ignores writes to existing hashes, so the replacements go first
	// into a fresh store).
	mixed := storage.NewMemStore()
	replaced := map[string]bool{}
	for _, si := range []int{1, 3} {
		lo := si * 80
		hi := lo + 80
		if hi > s.kv.Tokens {
			hi = s.kv.Tokens
		}
		part, err := s.kv.SliceTokens(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := s.codec.EncodeChunkV1(part, si, lo, 1)
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.man.ChunkHash(1, si)
		if err != nil {
			t.Fatal(err)
		}
		if err := mixed.PutChunk(ctx, h, v1); err != nil {
			t.Fatal(err)
		}
		replaced[h] = true
	}
	for _, row := range s.man.Hashes {
		for _, h := range row {
			if replaced[h] {
				continue
			}
			data, err := s.store.GetChunk(ctx, h)
			if err != nil {
				t.Fatal(err)
			}
			if err := mixed.PutChunk(ctx, h, data); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := mixed.PutManifest(ctx, s.man); err != nil {
		t.Fatal(err)
	}

	srv := transport.NewServer(mixed)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	client, err := transport.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	for _, disable := range []bool{false, true} {
		f := &Fetcher{
			Source: client, Codec: s.codec, Model: s.model, Device: llm.A40x4(),
			Planner:          Planner{Adapt: false, DefaultLevel: 1},
			DisableStreaming: disable,
			FrameSize:        1 << 10,
		}
		kv, rep, err := f.Fetch(ctx, "ctx-1")
		if err != nil {
			t.Fatalf("disable=%v: %v", disable, err)
		}
		if rep.Streamed == disable {
			t.Errorf("disable=%v: streamed=%v", disable, rep.Streamed)
		}
		diff, err := kv.MaxAbsDiff(ref)
		if err != nil {
			t.Fatal(err)
		}
		if diff != 0 {
			t.Errorf("disable=%v: mixed-format fetch differs from reference: max |Δ| = %g", disable, diff)
		}
	}
}

// TestFetchStreamedDecodeErrorSurfaces: a corrupt chunk payload must
// surface as the decode failure, not as the context cancellation the
// failing worker triggers to stop the stream.
func TestFetchStreamedDecodeErrorSurfaces(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()

	// Rebuild the store with chunk 1's level-0 payload corrupted under
	// its original content address (PutChunk ignores writes to existing
	// hashes, so a fresh store is needed).
	corrupt := storage.NewMemStore()
	badHash, err := s.man.ChunkHash(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range s.man.Hashes {
		for _, h := range row {
			if h == badHash {
				if err := corrupt.PutChunk(ctx, h, []byte("garbage bitstream")); err != nil {
					t.Fatal(err)
				}
				continue
			}
			data, err := s.store.GetChunk(ctx, h)
			if err != nil {
				t.Fatal(err)
			}
			if err := corrupt.PutChunk(ctx, h, data); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := corrupt.PutManifest(ctx, s.man); err != nil {
		t.Fatal(err)
	}

	srv := transport.NewServer(corrupt)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	client, err := transport.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	f := &Fetcher{
		Source:  client,
		Codec:   s.codec,
		Model:   s.model,
		Device:  llm.A40x4(),
		Planner: Planner{Adapt: false, DefaultLevel: 0},
	}
	_, _, err = f.Fetch(ctx, "ctx-1")
	if err == nil {
		t.Fatal("fetch of a corrupt chunk succeeded")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("decode failure masked as cancellation: %v", err)
	}
	if !strings.Contains(err.Error(), "chunk 1") {
		t.Errorf("error does not name the corrupt chunk: %v", err)
	}
}
