package streamer

import (
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// The fetch timeline is the single source of truth for a FetchReport's
// time attribution and for the spans the tracer records: every
// transfer, decode, and recompute phase is captured once as a wall-
// clock interval and reduced at fetch end into the report's components.
// The reduction attributes each wall-clock instant to at most one
// component — DecodeTime is the union of the decode intervals (coder
// lanes decode in parallel, so summing them would double-charge
// overlapped instants), RecomputeTime is the recompute union minus any
// decode overlap, and TransferTime is the transfer union minus the
// instants compute was running — so
//
//	TransferTime + DecodeTime + RecomputeTime ≤ LoadTime
//
// holds by construction at any pipeline depth and any decode
// parallelism, where accumulate-every-interval accounting could sum
// past the wall clock.

type phaseKind uint8

const (
	phaseTransfer phaseKind = iota
	phaseDecode
	phaseRecompute
)

type phaseInterval struct {
	kind       phaseKind
	start, end time.Time
}

// fetchTimeline collects one fetch's phase intervals. Safe for
// concurrent use: transfer goroutines and the decode worker append
// concurrently.
type fetchTimeline struct {
	mu    sync.Mutex
	ivals []phaseInterval
}

// add records one phase interval and mirrors it as a child span of sp
// (nil-safe). Callers build attrs only when sp is non-nil so the
// disabled-tracing path constructs nothing.
func (tl *fetchTimeline) add(sp *telemetry.Span, kind phaseKind, name string, start, end time.Time, attrs []telemetry.Attr) {
	if end.Before(start) {
		end = start
	}
	tl.mu.Lock()
	tl.ivals = append(tl.ivals, phaseInterval{kind: kind, start: start, end: end})
	tl.mu.Unlock()
	sp.Record(name, start, end.Sub(start), attrs...)
}

// unionIntervals merges sorted-or-not intervals into a disjoint,
// sorted cover. Input is consumed.
func unionIntervals(ivals []phaseInterval) []phaseInterval {
	if len(ivals) == 0 {
		return nil
	}
	sort.Slice(ivals, func(i, j int) bool { return ivals[i].start.Before(ivals[j].start) })
	out := ivals[:1]
	for _, iv := range ivals[1:] {
		last := &out[len(out)-1]
		if !iv.start.After(last.end) {
			if iv.end.After(last.end) {
				last.end = iv.end
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// sumIntervals totals a disjoint interval set.
func sumIntervals(ivals []phaseInterval) time.Duration {
	var total time.Duration
	for _, iv := range ivals {
		total += iv.end.Sub(iv.start)
	}
	return total
}

// overlap returns the total intersection of two disjoint, sorted
// interval sets.
func overlap(a, b []phaseInterval) time.Duration {
	var total time.Duration
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		start := a[i].start
		if b[j].start.After(start) {
			start = b[j].start
		}
		end := a[i].end
		if b[j].end.Before(end) {
			end = b[j].end
		}
		if end.After(start) {
			total += end.Sub(start)
		}
		if a[i].end.Before(b[j].end) {
			i++
		} else {
			j++
		}
	}
	return total
}

// apply reduces the timeline into the report's exclusive attribution.
func (tl *fetchTimeline) apply(report *FetchReport) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var transfers, decodes, recomputes []phaseInterval
	for _, iv := range tl.ivals {
		switch iv.kind {
		case phaseTransfer:
			transfers = append(transfers, iv)
		case phaseDecode:
			decodes = append(decodes, iv)
		case phaseRecompute:
			recomputes = append(recomputes, iv)
		}
	}
	du := unionIntervals(decodes)
	ru := unionIntervals(recomputes)
	report.DecodeTime = sumIntervals(du)
	report.RecomputeTime = sumIntervals(ru) - overlap(ru, du)
	if report.RecomputeTime < 0 {
		report.RecomputeTime = 0
	}
	busy := append(append(make([]phaseInterval, 0, len(du)+len(ru)), du...), ru...)
	bu := unionIntervals(busy)
	tu := unionIntervals(transfers)
	report.TransferTime = sumIntervals(tu) - overlap(tu, bu)
	if report.TransferTime < 0 {
		report.TransferTime = 0
	}
}
