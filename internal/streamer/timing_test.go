package streamer

import (
	"context"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func ival(kind phaseKind, startMS, endMS int) phaseInterval {
	base := time.Unix(0, 0)
	return phaseInterval{
		kind:  kind,
		start: base.Add(time.Duration(startMS) * time.Millisecond),
		end:   base.Add(time.Duration(endMS) * time.Millisecond),
	}
}

func TestUnionIntervals(t *testing.T) {
	got := unionIntervals([]phaseInterval{
		ival(phaseTransfer, 50, 70),
		ival(phaseTransfer, 0, 10),
		ival(phaseTransfer, 5, 20),  // overlaps the first
		ival(phaseTransfer, 20, 30), // touching counts as merged
		ival(phaseTransfer, 60, 65), // fully contained
	})
	if len(got) != 2 {
		t.Fatalf("union has %d intervals, want 2: %v", len(got), got)
	}
	if d := sumIntervals(got); d != 50*time.Millisecond {
		t.Errorf("union sums to %v, want 50ms", d)
	}
}

func TestOverlap(t *testing.T) {
	a := unionIntervals([]phaseInterval{ival(phaseTransfer, 0, 30), ival(phaseTransfer, 50, 60)})
	b := unionIntervals([]phaseInterval{ival(phaseDecode, 10, 20), ival(phaseDecode, 25, 55)})
	// [10,20] + [25,30] + [50,55] = 20ms.
	if d := overlap(a, b); d != 20*time.Millisecond {
		t.Errorf("overlap = %v, want 20ms", d)
	}
	if d := overlap(a, nil); d != 0 {
		t.Errorf("overlap with empty = %v", d)
	}
}

func TestTimelineApplyExclusive(t *testing.T) {
	// Two overlapping transfers (pipelined), decode running during part
	// of the second transfer: transfer union [0,40], decode [30,50] and
	// [60,70], so TransferTime = 40 - overlap([0,40],[30,50]) = 30ms.
	tl := &fetchTimeline{ivals: []phaseInterval{
		ival(phaseTransfer, 0, 25),
		ival(phaseTransfer, 10, 40),
		ival(phaseDecode, 30, 50),
		ival(phaseRecompute, 60, 70),
	}}
	var rep FetchReport
	tl.apply(&rep)
	if rep.DecodeTime != 20*time.Millisecond {
		t.Errorf("DecodeTime = %v, want 20ms", rep.DecodeTime)
	}
	if rep.RecomputeTime != 10*time.Millisecond {
		t.Errorf("RecomputeTime = %v, want 10ms", rep.RecomputeTime)
	}
	if rep.TransferTime != 30*time.Millisecond {
		t.Errorf("TransferTime = %v, want 30ms", rep.TransferTime)
	}
	wall := 70 * time.Millisecond
	if sum := rep.TransferTime + rep.DecodeTime + rep.RecomputeTime; sum > wall {
		t.Errorf("attribution sum %v exceeds wall clock %v", sum, wall)
	}
}

// TestAttributionNeverExceedsLoadTime is the satellite invariant: on
// live fetches over both paths and several pipeline depths, the
// report's exclusive attribution must fit inside the wall clock, and
// the tracer must hold the very spans the attribution was computed
// from.
func TestAttributionNeverExceedsLoadTime(t *testing.T) {
	s := newStack(t)
	for _, tc := range []struct {
		name      string
		depth     int
		streaming bool
	}{
		{"rr-depth1", 1, false},
		{"rr-depth3", 3, false},
		{"stream-depth1", 1, true},
		{"stream-depth3", 3, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := telemetry.NewTracer(0)
			ctx, root := tr.StartRequest(context.Background(), "request")
			f := &Fetcher{
				Source:           s.client,
				Codec:            s.codec,
				Model:            s.model,
				Planner:          Planner{Adapt: false, DefaultLevel: 1},
				PipelineDepth:    tc.depth,
				DisableStreaming: !tc.streaming,
			}
			_, rep, err := f.Fetch(ctx, "ctx-1")
			if err != nil {
				t.Fatal(err)
			}
			root.End()
			sum := rep.TransferTime + rep.DecodeTime + rep.RecomputeTime
			if sum > rep.LoadTime {
				t.Errorf("TransferTime(%v)+DecodeTime(%v)+RecomputeTime(%v) = %v exceeds LoadTime %v",
					rep.TransferTime, rep.DecodeTime, rep.RecomputeTime, sum, rep.LoadTime)
			}
			if rep.TransferTime <= 0 || rep.DecodeTime <= 0 {
				t.Errorf("components must be positive: transfer=%v decode=%v", rep.TransferTime, rep.DecodeTime)
			}
			var transfers, decodes int
			for _, r := range tr.Snapshot() {
				switch r.Name {
				case "transfer":
					transfers++
				case "decode":
					decodes++
				}
			}
			if transfers == 0 || decodes == 0 {
				t.Errorf("trace missing phase spans: %d transfer, %d decode", transfers, decodes)
			}
			if decodes != s.meta.NumChunks() {
				t.Errorf("trace holds %d decode spans, want one per chunk (%d)", decodes, s.meta.NumChunks())
			}
		})
	}
}
