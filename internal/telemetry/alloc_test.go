package telemetry

import (
	"context"
	"testing"
	"time"
)

// disabledFetchStep is the exact shape of the hot path's per-chunk
// instrumentation with tracing off: one context lookup, nil branches,
// nil-receiver method calls. The acceptance criterion is 0 allocs/op.
func disabledFetchStep(ctx context.Context) {
	sp := FromContext(ctx)
	if sp != nil {
		sp.Event("switch", Attr{Key: "level", Value: 1})
	}
	sp.Record("transfer", time.Time{}, time.Millisecond)
	sp.SetAttr("bytes", 0)
	ctx2, child := Start(ctx, "decode")
	_ = ctx2
	child.End()
}

// TestDisabledPathZeroAllocs proves the nil-span fast path allocates
// nothing — the PR 4 hot-path wins survive with telemetry compiled in.
func TestDisabledPathZeroAllocs(t *testing.T) {
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() { disabledFetchStep(ctx) }); allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f allocs/op, want 0", allocs)
	}
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "")
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1)
		h.Observe(1)
	}); allocs != 0 {
		t.Fatalf("nil instruments allocate %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkDisabledSpan is the benchmark form of the proof: run with
// -benchmem and read 0 B/op, 0 allocs/op.
func BenchmarkDisabledSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledFetchStep(ctx)
	}
}

// BenchmarkEnabledSpan bounds the cost with tracing on, for comparison.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer(1 << 10)
	ctx, root := tr.StartRequest(context.Background(), "request")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disabledFetchStep(ctx)
	}
}

// BenchmarkHistogramObserve measures the registry's hot instrument.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("cachegen_bench_seconds", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}
