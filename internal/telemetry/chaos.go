package telemetry

import "repro/internal/metrics"

// RegisterChaos absorbs a metrics.ChaosCounters into the registry as
// gauge functions reading the shared atomics — the chaos injector and
// the fetchers keep ticking the same struct, and the live registry
// exposes it without a second accounting path. No-op when either side
// is nil.
func RegisterChaos(r *Registry, c *metrics.ChaosCounters) {
	if r == nil || c == nil {
		return
	}
	for _, e := range []struct {
		name, help string
		load       func() uint64
	}{
		{"cachegen_chaos_node_kills_total", "node processes killed by the chaos injector", c.NodeKills.Load},
		{"cachegen_chaos_node_restarts_total", "killed nodes brought back", c.NodeRestarts.Load},
		{"cachegen_chaos_partitions_total", "network partitions imposed", c.Partitions.Load},
		{"cachegen_chaos_partitions_healed_total", "network partitions lifted", c.PartitionsHealed.Load},
		{"cachegen_chaos_slow_disks_total", "slow-disk faults imposed", c.SlowDisks.Load},
		{"cachegen_chaos_slow_disks_healed_total", "slow-disk faults lifted", c.SlowDisksHealed.Load},
		{"cachegen_chaos_bandwidth_cliffs_total", "bandwidth cliffs imposed", c.BandwidthCliffs.Load},
		{"cachegen_chaos_bandwidth_cliffs_healed_total", "bandwidth cliffs lifted", c.BandwidthCliffsHealed.Load},
		{"cachegen_chaos_corrupt_frames_injected_total", "payloads corrupted on the wire", c.CorruptFramesInjected.Load},
		{"cachegen_chaos_corrupt_frames_rejected_total", "corrupt payloads caught by CRC", c.CorruptFramesRejected.Load},
	} {
		load := e.load
		r.GaugeFunc(e.name, e.help, func() float64 { return float64(load()) })
	}
}
