package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewDebugMux mounts the exposition surface:
//
//	/debug/metrics      Prometheus text format
//	/debug/dash         plain-text human dashboard
//	/debug/trace        Chrome trace_event JSON (open in Perfetto)
//	/debug/trace.jsonl  the same records as JSON-lines
//	/debug/pprof/       the standard Go profiler endpoints
//
// Either argument may be nil; its endpoints then serve empty documents.
func NewDebugMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "cachegen telemetry — endpoints:")
		for _, p := range []string{"/debug/metrics", "/debug/dash", "/debug/trace", "/debug/trace.jsonl", "/debug/pprof/"} {
			fmt.Fprintln(w, "  "+p)
		}
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/dash", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.WriteDashboard(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteTraceEvents(w)
	})
	mux.HandleFunc("/debug/trace.jsonl", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = tr.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running /debug exposition listener.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug listens on addr (e.g. ":9321" or "127.0.0.1:0") and serves
// the debug mux in the background. The caller logs Addr() so a curl or
// scraper can find an ephemeral port.
func ServeDebug(addr string, reg *Registry, tr *Tracer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMux(reg, tr), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and server.
func (d *DebugServer) Close() error { return d.srv.Close() }
