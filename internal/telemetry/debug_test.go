package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cachegen_test_total", "a counter").Add(3)
	tr := NewTracer(64)
	_, sp := tr.StartRequest(context.Background(), "request")
	sp.End()

	srv, err := ServeDebug("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/debug/metrics"); !strings.Contains(out, "cachegen_test_total 3") {
		t.Errorf("/debug/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/dash"); !strings.Contains(out, "cachegen_test_total") {
		t.Errorf("/debug/dash missing counter:\n%s", out)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(get("/debug/trace")), &doc); err != nil {
		t.Errorf("/debug/trace is not valid trace_event JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 { // one span → b + e
		t.Errorf("trace has %d events, want 2", len(doc.TraceEvents))
	}
	if out := get("/debug/trace.jsonl"); !strings.Contains(out, `"name":"request"`) {
		t.Errorf("/debug/trace.jsonl missing span:\n%s", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", out)
	}
	if out := get("/"); !strings.Contains(out, "/debug/metrics") {
		t.Errorf("index page missing endpoint list:\n%s", out)
	}
}
