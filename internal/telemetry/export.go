package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// jsonlRecord is the JSON-lines shape of one record: flat, one object
// per line, attrs folded into a map for grep/jq friendliness.
type jsonlRecord struct {
	Trace   uint64         `json:"trace"`
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// WriteJSONL writes every retained record as one JSON object per line,
// in start-time order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	recs := t.Snapshot()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(jsonlRecord{
			Trace: r.Trace, ID: r.ID, Parent: r.Parent, Name: r.Name,
			StartNS: r.Start.UnixNano(), DurNS: int64(r.Dur), Attrs: attrMap(r.Attrs),
		}); err != nil {
			return err
		}
	}
	return nil
}

// traceEvent is one entry of the Chrome trace_event format ("JSON
// object format"), the file chrome://tracing and Perfetto open
// directly. Timed spans export as async begin/end pairs ("b"/"e")
// keyed by span id, so overlapping chunk transfers at pipeline depth
// > 1 render as parallel tracks instead of violating duration-event
// nesting; instant events export as "i".
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   uint64         `json:"pid"`
	TID   uint64         `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteTraceEvents writes the retained records as a Chrome trace_event
// JSON document. Each request tree gets its own track (tid = trace id);
// timestamps are relative to the earliest retained record.
func (t *Tracer) WriteTraceEvents(w io.Writer) error {
	recs := t.Snapshot()
	var base time.Time
	for _, r := range recs {
		if base.IsZero() || r.Start.Before(base) {
			base = r.Start
		}
	}
	us := func(at time.Time) float64 { return float64(at.Sub(base)) / float64(time.Microsecond) }
	events := make([]traceEvent, 0, 2*len(recs))
	for _, r := range recs {
		args := attrMap(r.Attrs)
		if r.Dur == 0 {
			events = append(events, traceEvent{
				Name: r.Name, Cat: "event", Phase: "i", Scope: "t",
				TS: us(r.Start), PID: 1, TID: r.Trace, Args: args,
			})
			continue
		}
		id := fmt.Sprintf("0x%x", r.ID)
		events = append(events,
			traceEvent{Name: r.Name, Cat: "span", Phase: "b", ID: id,
				TS: us(r.Start), PID: 1, TID: r.Trace, Args: args},
			traceEvent{Name: r.Name, Cat: "span", Phase: "e", ID: id,
				TS: us(r.Start.Add(r.Dur)), PID: 1, TID: r.Trace},
		)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteFile dumps the trace to path, choosing the format by extension:
// ".jsonl" writes JSON-lines, anything else (".json", the -trace-out
// default) writes the Chrome trace_event document.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".jsonl") {
		werr = t.WriteJSONL(f)
	} else {
		werr = t.WriteTraceEvents(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
