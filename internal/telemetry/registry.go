package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Instrument naming scheme: cachegen_<component>_<what>[_<unit>], with
// Prometheus conventions for units and suffixes — counters end in
// _total, durations in _seconds, sizes in _bytes, rates in _bps.
// Label pairs (tenant, node, …) are passed as alternating key, value
// strings at registration and render into the series name.

// Counter is a monotonically increasing atomic counter. All methods
// are no-ops on a nil receiver (the disabled-registry path).
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 level. Nil-safe like Counter.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d (CAS loop; gauges are not contended).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket geometry: log-spaced buckets, histBucketsPerOctave
// per power of two, covering [2^histMinExp, 2^histMaxExp). Values in
// seconds, bytes, or bits/s all fit: ~0.23 ns up to ~4.3e9. The bucket
// width factor is 2^(1/4) ≈ 1.19, so a quantile read from a bucket's
// geometric midpoint is within ±9% of any sample in that bucket —
// "one bucket" of resolution without storing samples.
const (
	histBucketsPerOctave = 4
	histMinExp           = -32
	histMaxExp           = 32
	histBuckets          = (histMaxExp - histMinExp) * histBucketsPerOctave
)

// BucketFactor is the ratio between adjacent histogram bucket bounds.
var BucketFactor = math.Pow(2, 1.0/histBucketsPerOctave)

// Histogram is a lock-free streaming histogram over log-spaced buckets:
// Observe is a couple of atomic adds, and P50/P95/P99 come from the
// bucket counts without retaining samples. Nil-safe like Counter.
type Histogram struct {
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	under   atomic.Uint64 // v <= 0 or below the first bucket
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps v to its bucket (values past the top land in the
// last bucket; ≤0 and below-range values are counted separately).
func bucketIndex(v float64) int {
	i := int(math.Floor(math.Log2(v) * histBucketsPerOctave))
	i -= histMinExp * histBucketsPerOctave
	if i < 0 {
		return -1
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketBounds returns bucket i's [lo, hi) value range.
func bucketBounds(i int) (lo, hi float64) {
	exp := float64(i)/histBucketsPerOctave + histMinExp
	return math.Pow(2, exp), math.Pow(2, exp+1.0/histBucketsPerOctave)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	if v <= 0 {
		h.under.Add(1)
		return
	}
	if i := bucketIndex(v); i >= 0 {
		h.buckets[i].Add(1)
	} else {
		h.under.Add(1)
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (q in [0,1]) as the geometric
// midpoint of the bucket holding that rank — within one bucket width
// of the true order statistic. Returns 0 before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	cum := h.under.Load()
	if cum >= rank {
		return 0
	}
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			lo, hi := bucketBounds(i)
			return math.Sqrt(lo * hi)
		}
	}
	return 0
}

type instrumentKind int

const (
	kindCounter instrumentKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// instrument is one registered series.
type instrument struct {
	name   string // family name
	labels string // rendered `{k="v",...}` or ""
	help   string
	kind   instrumentKind
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

func (in *instrument) series() string { return in.name + in.labels }

// Registry holds named instruments for exposition. Registration is
// idempotent — asking for an existing name+labels returns the same
// instrument, so components re-register freely. A nil *Registry is the
// disabled registry: it hands out nil instruments, whose methods no-op.
type Registry struct {
	mu   sync.RWMutex
	inst map[string]*instrument
	ord  []*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{inst: map[string]*instrument{}}
}

// renderLabels turns alternating key, value strings into the
// Prometheus series suffix `{k="v",...}`, keys sorted.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, (len(labels)+1)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	if len(labels)%2 != 0 {
		pairs = append(pairs, kv{labels[len(labels)-1], ""})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the instrument for name+labels, creating it via make
// if absent. Kind mismatches on an existing series panic: that is a
// programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, kind instrumentKind, labels []string, make func(*instrument)) *instrument {
	key := name + renderLabels(labels)
	r.mu.RLock()
	in, ok := r.inst[key]
	r.mu.RUnlock()
	if ok {
		if in.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as a different kind", key))
		}
		return in
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok = r.inst[key]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as a different kind", key))
		}
		return in
	}
	in = &instrument{name: name, labels: renderLabels(labels), help: help, kind: kind}
	make(in)
	r.inst[key] = in
	r.ord = append(r.ord, in)
	return in
}

// Counter registers (or returns) a counter series.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, labels, func(in *instrument) { in.c = &Counter{} }).c
}

// Gauge registers (or returns) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, labels, func(in *instrument) { in.g = &Gauge{} }).g
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time — the bridge for components that already keep their own atomic
// counters (cache stats, pool stats, chaos counters).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.lookup(name, help, kindGaugeFunc, labels, func(in *instrument) { in.fn = fn })
}

// Histogram registers (or returns) a log-bucketed streaming histogram.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, labels, func(in *instrument) { in.h = &Histogram{} }).h
}

// snapshotOrd copies the registration-ordered instrument list.
func (r *Registry) snapshotOrd() []*instrument {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*instrument(nil), r.ord...)
}

// quantiles exposed for histograms, in Prometheus summary form.
var exportQuantiles = []struct {
	q     float64
	label string
}{{0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}}

// mergeLabel splices an extra k="v" pair into a rendered label set.
func mergeLabel(labels, k, v string) string {
	pair := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// WritePrometheus writes every instrument in Prometheus text
// exposition format (histograms as summaries with P50/P95/P99
// quantile series plus _sum and _count).
func (r *Registry) WritePrometheus(w io.Writer) {
	seen := map[string]bool{}
	for _, in := range r.snapshotOrd() {
		if !seen[in.name] {
			seen[in.name] = true
			if in.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", in.name, in.help)
			}
			typ := "gauge"
			switch in.kind {
			case kindCounter:
				typ = "counter"
			case kindHistogram:
				typ = "summary"
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", in.name, typ)
		}
		switch in.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s %d\n", in.series(), in.c.Value())
		case kindGauge:
			fmt.Fprintf(w, "%s %g\n", in.series(), in.g.Value())
		case kindGaugeFunc:
			fmt.Fprintf(w, "%s %g\n", in.series(), in.fn())
		case kindHistogram:
			for _, eq := range exportQuantiles {
				fmt.Fprintf(w, "%s%s %g\n", in.name, mergeLabel(in.labels, "quantile", eq.label), in.h.Quantile(eq.q))
			}
			fmt.Fprintf(w, "%s_sum%s %g\n", in.name, in.labels, in.h.Sum())
			fmt.Fprintf(w, "%s_count%s %d\n", in.name, in.labels, in.h.Count())
		}
	}
}

// WriteDashboard writes a plain-text human dashboard: one aligned line
// per series, histograms as count/mean/P50/P95/P99.
func (r *Registry) WriteDashboard(w io.Writer) {
	ord := r.snapshotOrd()
	width := 0
	for _, in := range ord {
		if n := len(in.series()); n > width {
			width = n
		}
	}
	for _, in := range ord {
		switch in.kind {
		case kindCounter:
			fmt.Fprintf(w, "%-*s  %d\n", width, in.series(), in.c.Value())
		case kindGauge:
			fmt.Fprintf(w, "%-*s  %g\n", width, in.series(), in.g.Value())
		case kindGaugeFunc:
			fmt.Fprintf(w, "%-*s  %g\n", width, in.series(), in.fn())
		case kindHistogram:
			n := in.h.Count()
			mean := 0.0
			if n > 0 {
				mean = in.h.Sum() / float64(n)
			}
			fmt.Fprintf(w, "%-*s  n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g\n",
				width, in.series(), n, mean,
				in.h.Quantile(0.5), in.h.Quantile(0.95), in.h.Quantile(0.99))
		}
	}
}
