package telemetry

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cachegen_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("cachegen_test_total", "a counter"); again != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("cachegen_test_level", "a gauge")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2.0 {
		t.Errorf("gauge = %g, want 2", g.Value())
	}
	r.GaugeFunc("cachegen_test_fn", "a func gauge", func() float64 { return 7 })

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE cachegen_test_total counter",
		"cachegen_test_total 5",
		"# TYPE cachegen_test_level gauge",
		"cachegen_test_level 2",
		"cachegen_test_fn 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "")
	r.GaugeFunc("x", "", func() float64 { return 1 })
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	r.WriteDashboard(&buf)
	if buf.Len() != 0 {
		t.Fatal("nil registry wrote output")
	}
}

func TestLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("cachegen_reqs_total", "requests", "tenant", "a")
	b := r.Counter("cachegen_reqs_total", "requests", "tenant", "b")
	if a == b {
		t.Fatal("different labels shared an instrument")
	}
	a.Add(1)
	b.Add(2)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, `cachegen_reqs_total{tenant="a"} 1`) ||
		!strings.Contains(out, `cachegen_reqs_total{tenant="b"} 2`) {
		t.Errorf("labeled series missing:\n%s", out)
	}
	if strings.Count(out, "# TYPE cachegen_reqs_total") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
}

// TestHistogramQuantiles: the streaming estimate must land within one
// log bucket of the exact order statistic — the same tolerance X11's
// live-vs-offline cross-check enforces.
func TestHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := &Histogram{}
	xs := make([]float64, 5000)
	for i := range xs {
		// Log-normal-ish latencies spanning ~3 decades.
		xs[i] = math.Exp(rng.NormFloat64()*1.2 - 2)
		h.Observe(xs[i])
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		exact := xs[int(math.Ceil(q*float64(len(xs))))-1]
		lo, hi := exact/(BucketFactor*BucketFactor), exact*BucketFactor*BucketFactor
		if got < lo || got > hi {
			t.Errorf("q%.2f = %g, exact %g: outside one-bucket tolerance [%g, %g]", q, got, exact, lo, hi)
		}
	}
	if h.Count() != 5000 {
		t.Errorf("count = %d", h.Count())
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if math.Abs(h.Sum()-sum) > 1e-6*sum {
		t.Errorf("sum = %g, want %g", h.Sum(), sum)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile nonzero")
	}
	h.Observe(0)
	h.Observe(-1)
	if h.Quantile(0.5) != 0 {
		t.Error("non-positive observations must quantile to 0")
	}
	h.Observe(1e30) // far past the top bucket: clamped, not lost
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if q := h.Quantile(1); q <= 0 {
		t.Errorf("max quantile %g, want the top bucket's midpoint", q)
	}
	var hd Histogram
	hd.ObserveDuration(time.Second)
	if q := hd.Quantile(0.5); q < 0.9 || q > 1.2 {
		t.Errorf("1s duration landed at %g", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cachegen_test_seconds", "latencies")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if s := h.Sum(); math.Abs(s-80) > 1e-9 {
		t.Errorf("sum = %g, want 80", s)
	}
}

func TestDashboardAndSummaryExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cachegen_gateway_ttft_seconds", "TTFT", "tenant", "a")
	for i := 0; i < 100; i++ {
		h.Observe(0.1)
	}
	var prom, dash bytes.Buffer
	r.WritePrometheus(&prom)
	r.WriteDashboard(&dash)
	for _, want := range []string{
		"# TYPE cachegen_gateway_ttft_seconds summary",
		`cachegen_gateway_ttft_seconds{tenant="a",quantile="0.5"}`,
		`cachegen_gateway_ttft_seconds_sum{tenant="a"}`,
		`cachegen_gateway_ttft_seconds_count{tenant="a"} 100`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, prom.String())
		}
	}
	if !strings.Contains(dash.String(), "n=100") {
		t.Errorf("dashboard missing histogram line:\n%s", dash.String())
	}
}
