// Package telemetry is the serving stack's observability plane: a
// per-request tracer whose span trees attribute TTFT to admission,
// queueing, planning, per-chunk transfer and decode (exportable as
// JSON-lines or a Chrome trace_event file for chrome://tracing and
// Perfetto), and a lock-cheap live metrics registry (atomic counters,
// gauges, and log-bucketed streaming histograms) exposed over a /debug
// HTTP endpoint in Prometheus text format alongside a plain-text
// dashboard and pprof.
//
// Everything is nil-safe by design: a nil *Tracer starts nil *Spans, a
// nil *Registry hands out nil instruments, and every method on a nil
// receiver is a no-op. Components therefore instrument unconditionally;
// with telemetry disabled the hot path pays a nil check and nothing
// else — no allocation, no lock (proven by BenchmarkDisabledSpan).
package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity bounds how many finished span records a Tracer
// retains when no capacity is configured: the newest records win, so a
// long-running server keeps the most recent requests' trees.
const DefaultTraceCapacity = 1 << 14

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanRecord is one finished span or instant event as the tracer stores
// it. Dur == 0 marks an instant event (SWITCH, CANCEL, failover);
// anything else is a timed phase.
type SpanRecord struct {
	// Trace groups the records of one request tree (the root span's ID).
	Trace uint64 `json:"trace"`
	// ID is unique across the tracer's lifetime; Parent is 0 for roots.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Start  time.Time
	Dur    time.Duration `json:"dur"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Tracer collects finished span records into a bounded ring. Safe for
// concurrent use. The zero value is not usable; a nil *Tracer is — it
// is the disabled tracer, and starting spans on it yields nil spans.
type Tracer struct {
	ids atomic.Uint64

	mu      sync.Mutex
	recs    []SpanRecord // ring buffer
	next    int          // next write position
	full    bool         // ring has wrapped
	dropped uint64       // records overwritten after wrap
}

// NewTracer returns a tracer retaining up to capacity finished records
// (≤0 = DefaultTraceCapacity), newest winning.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{recs: make([]SpanRecord, 0, capacity)}
}

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full && len(t.recs) < cap(t.recs) {
		t.recs = append(t.recs, r)
		return
	}
	t.full = true
	t.recs[t.next] = r
	t.next = (t.next + 1) % len(t.recs)
	t.dropped++
}

// Snapshot copies the retained records in arrival order.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.recs))
	if !t.full {
		return append(out, t.recs...)
	}
	out = append(out, t.recs[t.next:]...)
	return append(out, t.recs[:t.next]...)
}

// Len reports how many records the tracer currently retains.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// Dropped reports how many records the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset drops every retained record.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recs = t.recs[:0]
	t.next, t.full = 0, false
}

// Span is one live phase of a request tree. All methods are safe on a
// nil receiver (the disabled-tracing fast path) and for concurrent use
// — the fetch pipeline's receive loop and decode worker annotate the
// same fetch span from different goroutines.
type Span struct {
	tracer *Tracer
	trace  uint64
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// StartRequest begins a new root span (one request tree) and returns a
// context carrying it. On a nil tracer it returns ctx unchanged and a
// nil span.
func (t *Tracer) StartRequest(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	id := t.ids.Add(1)
	s := &Span{tracer: t, trace: id, id: id, name: name, start: time.Now(), attrs: attrs}
	return context.WithValue(ctx, spanKey{}, s), s
}

type spanKey struct{}

// FromContext returns the span carried by ctx, or nil. The lookup
// allocates nothing, so hot paths call it once and branch on nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// With returns ctx carrying s. A nil span returns ctx unchanged, so the
// disabled path never allocates a derived context.
func With(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// Start begins a child of the span carried by ctx and returns a context
// carrying the child. Without a span in ctx it returns ctx unchanged
// and nil — the zero-allocation disabled path.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	s := FromContext(ctx)
	if s == nil {
		return ctx, nil
	}
	child := s.Child(name, attrs...)
	return context.WithValue(ctx, spanKey{}, child), child
}

// Child begins a sub-span. Nil-safe: a nil parent yields a nil child.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer: s.tracer, trace: s.trace, parent: s.id,
		id: s.tracer.ids.Add(1), name: name, start: time.Now(), attrs: attrs,
	}
}

// End finishes the span and hands its record to the tracer. Safe to
// call more than once; only the first End records.
func (s *Span) End() {
	s.EndAt(time.Now())
}

// EndAt is End with an explicit end instant (callers that measured the
// phase themselves keep the record identical to their measurement).
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	dur := end.Sub(s.start)
	if dur <= 0 {
		dur = 1 // a timed phase is never mistaken for an instant event
	}
	s.tracer.record(SpanRecord{
		Trace: s.trace, ID: s.id, Parent: s.parent,
		Name: s.name, Start: s.start, Dur: dur, Attrs: attrs,
	})
}

// SetAttr annotates the span (last write per key wins at export time is
// not guaranteed; callers use distinct keys). Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Event records an instant event (Dur 0) under the span: a SWITCH, a
// CANCEL, a failover. Nil-safe.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.tracer.record(SpanRecord{
		Trace: s.trace, ID: s.tracer.ids.Add(1), Parent: s.id,
		Name: name, Start: time.Now(), Attrs: attrs,
	})
}

// Record adds an already-measured child phase: the caller supplies the
// exact start and duration, so the trace and any report derived from
// the same measurement cannot drift apart. Nil-safe.
func (s *Span) Record(name string, start time.Time, dur time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	if dur <= 0 {
		dur = 1
	}
	s.tracer.record(SpanRecord{
		Trace: s.trace, ID: s.tracer.ids.Add(1), Parent: s.id,
		Name: name, Start: start, Dur: dur, Attrs: attrs,
	})
}

// Event records an instant event on the span carried by ctx, if any.
func Event(ctx context.Context, name string, attrs ...Attr) {
	FromContext(ctx).Event(name, attrs...)
}

// Annotate adds an attribute to the span carried by ctx, if any.
func Annotate(ctx context.Context, key string, value any) {
	FromContext(ctx).SetAttr(key, value)
}
