package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer(64)
	ctx, root := tr.StartRequest(context.Background(), "request", Attr{Key: "tenant", Value: "a"})
	if root == nil {
		t.Fatal("root span is nil")
	}
	if got := FromContext(ctx); got != root {
		t.Fatal("context does not carry the root span")
	}
	cctx, child := Start(ctx, "fetch")
	if child == nil || FromContext(cctx) != child {
		t.Fatal("child span not carried")
	}
	child.Event("switch", Attr{Key: "level", Value: 2})
	child.Record("transfer", time.Now().Add(-time.Millisecond), time.Millisecond, Attr{Key: "chunk", Value: 0})
	child.End()
	root.End()
	root.End() // double End must not double-record

	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4: %+v", len(recs), recs)
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
		if r.Trace != root.id {
			t.Errorf("record %q trace %d, want %d", r.Name, r.Trace, root.id)
		}
	}
	if byName["switch"].Dur != 0 {
		t.Error("event has nonzero duration")
	}
	if byName["switch"].Parent != child.id {
		t.Error("event not parented under the child span")
	}
	if byName["fetch"].Parent != root.id {
		t.Error("child not parented under the root")
	}
	if byName["transfer"].Dur != time.Millisecond {
		t.Errorf("recorded phase duration %v, want 1ms", byName["transfer"].Dur)
	}
	if len(byName["request"].Attrs) != 1 || byName["request"].Attrs[0].Key != "tenant" {
		t.Errorf("root attrs lost: %+v", byName["request"].Attrs)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRequest(context.Background(), "request")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	if ctx != context.Background() {
		t.Fatal("nil tracer derived a new context")
	}
	ctx2, child := Start(ctx, "fetch")
	if child != nil || ctx2 != ctx {
		t.Fatal("Start without a span must return inputs unchanged")
	}
	// All of these must be safe no-ops.
	sp.End()
	sp.SetAttr("k", "v")
	sp.Event("e")
	sp.Record("r", time.Now(), time.Second)
	sp.Child("c").End()
	Event(ctx, "e")
	Annotate(ctx, "k", "v")
	if tr.Snapshot() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer holds records")
	}
	tr.Reset()
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.StartRequest(context.Background(), "request")
	_ = ctx
	for i := 0; i < 10; i++ {
		root.Event("e", Attr{Key: "i", Value: i})
	}
	root.End()
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	// Newest records win: the last retained record is the root's End.
	if recs[len(recs)-1].Name != "request" {
		t.Errorf("last record %q, want the root span", recs[len(recs)-1].Name)
	}
	if tr.Dropped() != 7 {
		t.Errorf("dropped %d, want 7", tr.Dropped())
	}
}

func TestConcurrentAnnotation(t *testing.T) {
	tr := NewTracer(1 << 12)
	_, root := tr.StartRequest(context.Background(), "request")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root.SetAttr("k", g)
				root.Event("e")
				root.Record("p", time.Now(), time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	root.End()
	if n := tr.Len(); n != 8*50*2+1 {
		t.Errorf("retained %d records, want %d", n, 8*50*2+1)
	}
}

func TestWriteTraceEvents(t *testing.T) {
	tr := NewTracer(64)
	ctx, root := tr.StartRequest(context.Background(), "request")
	_, fetch := Start(ctx, "fetch")
	fetch.Record("transfer", time.Now(), 2*time.Millisecond, Attr{Key: "chunk", Value: 1})
	fetch.Event("switch", Attr{Key: "level", Value: 3})
	fetch.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace_event output is not valid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if ts, ok := ev["ts"].(float64); !ok || ts < 0 {
			t.Errorf("event %v has bad ts", ev)
		}
	}
	// 3 timed spans (request, fetch, transfer) → 3 b + 3 e; 1 instant.
	if phases["b"] != 3 || phases["e"] != 3 || phases["i"] != 1 {
		t.Errorf("phase counts %v, want b:3 e:3 i:1", phases)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(64)
	_, root := tr.StartRequest(context.Background(), "request", Attr{Key: "tenant", Value: "a"})
	root.Event("switch", Attr{Key: "level", Value: 2})
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		if rec["trace"] == nil || rec["name"] == nil {
			t.Errorf("line %q missing fields", line)
		}
	}
}
