package tensor

import (
	"bytes"
	"testing"
)

// FuzzReadKV: arbitrary serialized tensors must never panic the reader.
func FuzzReadKV(f *testing.F) {
	kv := New(2, 3, 4)
	kv.Set(Key, 1, 2, 3, 1.5)
	var buf bytes.Buffer
	if _, err := kv.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("KVT1short"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadKV(bytes.NewReader(data))
		if err == nil {
			// A tensor that reads back must be internally consistent.
			if got.Elems() != len(got.K) || got.Elems() != len(got.V) {
				t.Fatal("inconsistent decoded tensor")
			}
		}
	})
}
