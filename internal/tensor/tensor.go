// Package tensor provides the KV-cache tensor substrate used throughout the
// CacheGen reproduction: a dense [layer][token][channel] float32 layout for
// the key and value tensors of a transformer context, plus the slicing,
// delta, statistics, and serialization operations the codec and the LLM
// simulator are built on.
//
// The layout follows the paper's indexing (§5.1.3): every element of a KV
// cache is addressed by its layer, channel, and token position. Keys and
// values are stored as separate flat slices in (layer, token, channel)
// row-major order so that all channels of one token in one layer are
// contiguous — the access pattern of both the codec (per-token-group
// encoding) and the attention cost model.
package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Kind selects the key or the value tensor of a KV cache.
type Kind int

const (
	// Key selects the K tensor.
	Key Kind = iota
	// Value selects the V tensor.
	Value
)

// Kinds lists both tensor kinds in a stable order, for range loops.
var Kinds = [2]Kind{Key, Value}

// String returns "K" or "V".
func (k Kind) String() string {
	if k == Key {
		return "K"
	}
	return "V"
}

// KV is the KV cache of one context: the key and value tensors produced by
// every transformer layer for every token. It is the unit the CacheGen
// encoder consumes and the decoder reconstructs.
//
// The zero value is an empty cache; use New to allocate a sized one.
type KV struct {
	Layers   int // number of transformer layers
	Tokens   int // number of tokens in the context
	Channels int // KV channels per token per layer (heads × head dim)

	// K and V hold the key and value tensors as flat slices of length
	// Layers*Tokens*Channels, indexed (layer*Tokens+token)*Channels+channel.
	K, V []float32
}

// New allocates a zeroed KV cache with the given dimensions.
func New(layers, tokens, channels int) *KV {
	n := layers * tokens * channels
	return &KV{
		Layers:   layers,
		Tokens:   tokens,
		Channels: channels,
		K:        make([]float32, n),
		V:        make([]float32, n),
	}
}

// Elems returns the number of elements in one of the two tensors
// (layers × tokens × channels).
func (kv *KV) Elems() int { return kv.Layers * kv.Tokens * kv.Channels }

// Data returns the flat slice backing the tensor of the given kind.
func (kv *KV) Data(kind Kind) []float32 {
	if kind == Key {
		return kv.K
	}
	return kv.V
}

// Index returns the flat index of (layer, token, channel).
func (kv *KV) Index(layer, token, channel int) int {
	return (layer*kv.Tokens+token)*kv.Channels + channel
}

// At returns the element of the given kind at (layer, token, channel).
func (kv *KV) At(kind Kind, layer, token, channel int) float32 {
	return kv.Data(kind)[kv.Index(layer, token, channel)]
}

// Set stores x at (layer, token, channel) in the tensor of the given kind.
func (kv *KV) Set(kind Kind, layer, token, channel int, x float32) {
	kv.Data(kind)[kv.Index(layer, token, channel)] = x
}

// Row returns the contiguous channel vector of one token in one layer.
// Mutating the returned slice mutates the cache.
func (kv *KV) Row(kind Kind, layer, token int) []float32 {
	base := (layer*kv.Tokens + token) * kv.Channels
	return kv.Data(kind)[base : base+kv.Channels]
}

// SizeBytesFP16 returns the transmission-time size of the uncompressed
// cache assuming fp16 storage (2 bytes/element, both K and V), the format
// the paper's "original" sizes refer to (§3).
func (kv *KV) SizeBytesFP16() int64 {
	return int64(kv.Elems()) * 2 * 2
}

// Clone returns a deep copy of the cache.
func (kv *KV) Clone() *KV {
	out := New(kv.Layers, kv.Tokens, kv.Channels)
	copy(out.K, kv.K)
	copy(out.V, kv.V)
	return out
}

// SliceTokens returns a deep copy of the token range [from, to) across all
// layers and channels. It is how a context's KV cache is split into chunks
// (§5.3): each chunk contains the layers and channels of its tokens.
func (kv *KV) SliceTokens(from, to int) (*KV, error) {
	if from < 0 || to > kv.Tokens || from > to {
		return nil, fmt.Errorf("tensor: token slice [%d,%d) out of range 0..%d", from, to, kv.Tokens)
	}
	out := New(kv.Layers, to-from, kv.Channels)
	for l := 0; l < kv.Layers; l++ {
		for _, kind := range Kinds {
			src := kv.Data(kind)
			dst := out.Data(kind)
			sBase := (l*kv.Tokens + from) * kv.Channels
			dBase := l * out.Tokens * out.Channels
			copy(dst[dBase:dBase+(to-from)*kv.Channels], src[sBase:sBase+(to-from)*kv.Channels])
		}
	}
	return out, nil
}

// CopyTokensAt copies tokens [srcFrom, srcTo) of src into kv starting at
// token dstOff, across all layers and channels. It is the writable
// token-range counterpart of SliceTokens: a caller assembling a context
// allocates the destination once and copies (or decodes) each part into
// place, instead of concatenating per-part tensors — the O(n²)
// reassembly pattern this replaces.
func (kv *KV) CopyTokensAt(dstOff int, src *KV, srcFrom, srcTo int) error {
	if src.Layers != kv.Layers || src.Channels != kv.Channels {
		return fmt.Errorf("tensor: copy source has shape (%d,·,%d), want (%d,·,%d)",
			src.Layers, src.Channels, kv.Layers, kv.Channels)
	}
	if srcFrom < 0 || srcTo > src.Tokens || srcFrom > srcTo {
		return fmt.Errorf("tensor: source token range [%d,%d) out of range 0..%d", srcFrom, srcTo, src.Tokens)
	}
	n := srcTo - srcFrom
	if dstOff < 0 || dstOff+n > kv.Tokens {
		return fmt.Errorf("tensor: %d tokens do not fit destination at offset %d (have %d)", n, dstOff, kv.Tokens)
	}
	for l := 0; l < kv.Layers; l++ {
		for _, kind := range Kinds {
			srcData := src.Data(kind)
			dstData := kv.Data(kind)
			sBase := (l*src.Tokens + srcFrom) * kv.Channels
			dBase := (l*kv.Tokens + dstOff) * kv.Channels
			copy(dstData[dBase:dBase+n*kv.Channels], srcData[sBase:sBase+n*kv.Channels])
		}
	}
	return nil
}

// ConcatTokens concatenates the given caches along the token dimension.
// All parts must share layer and channel dimensions. It is the inverse of
// splitting a cache into chunks: decoded chunks are concatenated to
// reconstruct the full KV cache (§5.3).
func ConcatTokens(parts ...*KV) (*KV, error) {
	if len(parts) == 0 {
		return nil, errors.New("tensor: concat of zero parts")
	}
	layers, channels := parts[0].Layers, parts[0].Channels
	total := 0
	for i, p := range parts {
		if p.Layers != layers || p.Channels != channels {
			return nil, fmt.Errorf("tensor: concat part %d has shape (%d,·,%d), want (%d,·,%d)",
				i, p.Layers, p.Channels, layers, channels)
		}
		total += p.Tokens
	}
	out := New(layers, total, channels)
	off := 0
	for _, p := range parts {
		for l := 0; l < layers; l++ {
			for _, kind := range Kinds {
				src := p.Data(kind)
				dst := out.Data(kind)
				sBase := l * p.Tokens * channels
				dBase := (l*total + off) * channels
				copy(dst[dBase:dBase+p.Tokens*channels], src[sBase:sBase+p.Tokens*channels])
			}
		}
		off += p.Tokens
	}
	return out, nil
}

// DropTokens returns a copy of the cache containing only the tokens for
// which keep[token] is true, preserving order. It is the operation
// token-dropping baselines (H2O, Scissorhands) perform on a KV cache.
func (kv *KV) DropTokens(keep []bool) (*KV, error) {
	if len(keep) != kv.Tokens {
		return nil, fmt.Errorf("tensor: keep mask has %d entries, want %d", len(keep), kv.Tokens)
	}
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	out := New(kv.Layers, kept, kv.Channels)
	for l := 0; l < kv.Layers; l++ {
		dt := 0
		for t := 0; t < kv.Tokens; t++ {
			if !keep[t] {
				continue
			}
			for _, kind := range Kinds {
				copy(out.Row(kind, l, dt), kv.Row(kind, l, t))
			}
			dt++
		}
	}
	return out, nil
}

// Delta writes, for every (layer, channel), the difference between token
// `token` and token `anchor` of the given kind into dst (length Channels)
// for the given layer. Exposed for the codec's change-based encoding (§5.2).
func (kv *KV) Delta(kind Kind, layer, token, anchor int, dst []float32) {
	tr := kv.Row(kind, layer, token)
	ar := kv.Row(kind, layer, anchor)
	for c := range dst {
		dst[c] = tr[c] - ar[c]
	}
}

// LayerRMSE returns, per layer, the root-mean-square error between kv and
// other across both K and V. The quality model consumes this as its
// per-layer loss signal (§5.1.2).
func (kv *KV) LayerRMSE(other *KV) ([]float64, error) {
	if err := kv.sameShape(other); err != nil {
		return nil, err
	}
	out := make([]float64, kv.Layers)
	per := kv.Tokens * kv.Channels
	for l := 0; l < kv.Layers; l++ {
		var sum float64
		base := l * per
		for _, kind := range Kinds {
			a := kv.Data(kind)[base : base+per]
			b := other.Data(kind)[base : base+per]
			for i := range a {
				d := float64(a[i]) - float64(b[i])
				sum += d * d
			}
		}
		out[l] = math.Sqrt(sum / float64(2*per))
	}
	return out, nil
}

// LayerStd returns the per-layer standard deviation of kv across both K and
// V, used to normalise per-layer losses.
func (kv *KV) LayerStd() []float64 {
	out := make([]float64, kv.Layers)
	per := kv.Tokens * kv.Channels
	for l := 0; l < kv.Layers; l++ {
		var sum, sumSq float64
		base := l * per
		n := float64(2 * per)
		for _, kind := range Kinds {
			a := kv.Data(kind)[base : base+per]
			for _, x := range a {
				f := float64(x)
				sum += f
				sumSq += f * f
			}
		}
		mean := sum / n
		v := sumSq/n - mean*mean
		if v < 0 {
			v = 0
		}
		out[l] = math.Sqrt(v)
	}
	return out
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// kv and other across both tensors.
func (kv *KV) MaxAbsDiff(other *KV) (float64, error) {
	if err := kv.sameShape(other); err != nil {
		return 0, err
	}
	var m float64
	for _, kind := range Kinds {
		a, b := kv.Data(kind), other.Data(kind)
		for i := range a {
			d := math.Abs(float64(a[i]) - float64(b[i]))
			if d > m {
				m = d
			}
		}
	}
	return m, nil
}

func (kv *KV) sameShape(other *KV) error {
	if kv.Layers != other.Layers || kv.Tokens != other.Tokens || kv.Channels != other.Channels {
		return fmt.Errorf("tensor: shape mismatch (%d,%d,%d) vs (%d,%d,%d)",
			kv.Layers, kv.Tokens, kv.Channels, other.Layers, other.Tokens, other.Channels)
	}
	return nil
}

// serialization format:
//
//	magic "KVT1" | layers u32 | tokens u32 | channels u32 |
//	K data (elems × f32 big-endian) | V data | crc32 of all preceding bytes
const kvMagic = "KVT1"

// WriteTo serialises the cache in the raw fp32 interchange format with a
// trailing CRC-32 checksum. It implements io.WriterTo.
func (kv *KV) WriteTo(w io.Writer) (int64, error) {
	h := crc32.NewIEEE()
	mw := io.MultiWriter(w, h)
	var n int64

	hdr := make([]byte, 4+12)
	copy(hdr, kvMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(kv.Layers))
	binary.BigEndian.PutUint32(hdr[8:], uint32(kv.Tokens))
	binary.BigEndian.PutUint32(hdr[12:], uint32(kv.Channels))
	m, err := mw.Write(hdr)
	n += int64(m)
	if err != nil {
		return n, err
	}

	buf := make([]byte, 4*4096)
	for _, kind := range Kinds {
		data := kv.Data(kind)
		for off := 0; off < len(data); {
			chunk := len(data) - off
			if chunk > 4096 {
				chunk = 4096
			}
			for i := 0; i < chunk; i++ {
				binary.BigEndian.PutUint32(buf[4*i:], math.Float32bits(data[off+i]))
			}
			m, err := mw.Write(buf[:4*chunk])
			n += int64(m)
			if err != nil {
				return n, err
			}
			off += chunk
		}
	}

	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], h.Sum32())
	m, err = w.Write(sum[:])
	n += int64(m)
	return n, err
}

// ReadKV deserialises a cache written by WriteTo, verifying the checksum.
func ReadKV(r io.Reader) (*KV, error) {
	h := crc32.NewIEEE()
	tr := io.TeeReader(r, h)

	hdr := make([]byte, 4+12)
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return nil, fmt.Errorf("tensor: reading header: %w", err)
	}
	if string(hdr[:4]) != kvMagic {
		return nil, fmt.Errorf("tensor: bad magic %q", hdr[:4])
	}
	layers := int(binary.BigEndian.Uint32(hdr[4:]))
	tokens := int(binary.BigEndian.Uint32(hdr[8:]))
	channels := int(binary.BigEndian.Uint32(hdr[12:]))
	const maxElems = 1 << 31
	if layers <= 0 || tokens <= 0 || channels <= 0 ||
		int64(layers)*int64(tokens)*int64(channels) > maxElems {
		return nil, fmt.Errorf("tensor: implausible dimensions (%d,%d,%d)", layers, tokens, channels)
	}

	kv := New(layers, tokens, channels)
	buf := make([]byte, 4*4096)
	for _, kind := range Kinds {
		data := kv.Data(kind)
		for off := 0; off < len(data); {
			chunk := len(data) - off
			if chunk > 4096 {
				chunk = 4096
			}
			if _, err := io.ReadFull(tr, buf[:4*chunk]); err != nil {
				return nil, fmt.Errorf("tensor: reading %s data: %w", kind, err)
			}
			for i := 0; i < chunk; i++ {
				data[off+i] = math.Float32frombits(binary.BigEndian.Uint32(buf[4*i:]))
			}
			off += chunk
		}
	}

	want := h.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("tensor: reading checksum: %w", err)
	}
	if got := binary.BigEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("tensor: checksum mismatch: got %08x want %08x", got, want)
	}
	return kv, nil
}
