package tensor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomKV(rng *rand.Rand, layers, tokens, channels int) *KV {
	kv := New(layers, tokens, channels)
	for i := range kv.K {
		kv.K[i] = float32(rng.NormFloat64() * 3)
		kv.V[i] = float32(rng.NormFloat64() * 2)
	}
	return kv
}

func TestNewDimensions(t *testing.T) {
	kv := New(4, 7, 3)
	if kv.Elems() != 4*7*3 {
		t.Fatalf("Elems = %d, want %d", kv.Elems(), 4*7*3)
	}
	if len(kv.K) != kv.Elems() || len(kv.V) != kv.Elems() {
		t.Fatalf("backing slices have wrong length")
	}
	if kv.SizeBytesFP16() != int64(4*7*3*2*2) {
		t.Fatalf("SizeBytesFP16 = %d", kv.SizeBytesFP16())
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	kv := New(3, 5, 4)
	kv.Set(Key, 2, 4, 3, 1.5)
	kv.Set(Value, 1, 2, 0, -2.25)
	if got := kv.At(Key, 2, 4, 3); got != 1.5 {
		t.Errorf("At(Key,2,4,3) = %v, want 1.5", got)
	}
	if got := kv.At(Value, 1, 2, 0); got != -2.25 {
		t.Errorf("At(Value,1,2,0) = %v, want -2.25", got)
	}
	// No aliasing between K and V.
	if got := kv.At(Value, 2, 4, 3); got != 0 {
		t.Errorf("V aliases K: got %v", got)
	}
}

func TestRowIsAliased(t *testing.T) {
	kv := New(2, 3, 4)
	row := kv.Row(Key, 1, 2)
	row[3] = 42
	if got := kv.At(Key, 1, 2, 3); got != 42 {
		t.Errorf("Row mutation not visible: got %v", got)
	}
}

func TestSliceTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kv := randomKV(rng, 3, 10, 4)
	part, err := kv.SliceTokens(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if part.Tokens != 5 || part.Layers != 3 || part.Channels != 4 {
		t.Fatalf("bad slice shape (%d,%d,%d)", part.Layers, part.Tokens, part.Channels)
	}
	for l := 0; l < 3; l++ {
		for tt := 0; tt < 5; tt++ {
			for c := 0; c < 4; c++ {
				if part.At(Key, l, tt, c) != kv.At(Key, l, tt+2, c) {
					t.Fatalf("K mismatch at (%d,%d,%d)", l, tt, c)
				}
				if part.At(Value, l, tt, c) != kv.At(Value, l, tt+2, c) {
					t.Fatalf("V mismatch at (%d,%d,%d)", l, tt, c)
				}
			}
		}
	}
}

func TestSliceTokensOutOfRange(t *testing.T) {
	kv := New(1, 4, 1)
	cases := [][2]int{{-1, 2}, {0, 5}, {3, 2}}
	for _, c := range cases {
		if _, err := kv.SliceTokens(c[0], c[1]); err == nil {
			t.Errorf("SliceTokens(%d,%d) succeeded, want error", c[0], c[1])
		}
	}
}

func TestSliceTokensIsCopy(t *testing.T) {
	kv := New(1, 4, 2)
	part, err := kv.SliceTokens(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	part.Set(Key, 0, 0, 0, 99)
	if kv.At(Key, 0, 1, 0) == 99 {
		t.Error("SliceTokens aliases the source")
	}
}

func TestConcatInvertsSlice(t *testing.T) {
	// Property: concatenating token slices reconstructs the original.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		layers := 1 + rng.Intn(4)
		tokens := 2 + rng.Intn(30)
		channels := 1 + rng.Intn(6)
		kv := randomKV(rng, layers, tokens, channels)

		cut := 1 + rng.Intn(tokens-1)
		a, err := kv.SliceTokens(0, cut)
		if err != nil {
			return false
		}
		b, err := kv.SliceTokens(cut, tokens)
		if err != nil {
			return false
		}
		whole, err := ConcatTokens(a, b)
		if err != nil {
			return false
		}
		d, err := kv.MaxAbsDiff(whole)
		return err == nil && d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcatShapeMismatch(t *testing.T) {
	a := New(2, 3, 4)
	b := New(2, 3, 5)
	if _, err := ConcatTokens(a, b); err == nil {
		t.Error("ConcatTokens accepted mismatched channels")
	}
	c := New(3, 3, 4)
	if _, err := ConcatTokens(a, c); err == nil {
		t.Error("ConcatTokens accepted mismatched layers")
	}
	if _, err := ConcatTokens(); err == nil {
		t.Error("ConcatTokens accepted zero parts")
	}
}

func TestDropTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kv := randomKV(rng, 2, 6, 3)
	keep := []bool{true, false, true, true, false, true}
	out, err := kv.DropTokens(keep)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tokens != 4 {
		t.Fatalf("kept %d tokens, want 4", out.Tokens)
	}
	wantIdx := []int{0, 2, 3, 5}
	for l := 0; l < 2; l++ {
		for i, src := range wantIdx {
			for c := 0; c < 3; c++ {
				if out.At(Key, l, i, c) != kv.At(Key, l, src, c) {
					t.Fatalf("dropped wrong token at l=%d i=%d", l, i)
				}
			}
		}
	}
}

func TestDropTokensBadMask(t *testing.T) {
	kv := New(1, 3, 1)
	if _, err := kv.DropTokens([]bool{true}); err == nil {
		t.Error("DropTokens accepted short mask")
	}
}

func TestDelta(t *testing.T) {
	kv := New(1, 3, 2)
	kv.Set(Key, 0, 0, 0, 1)
	kv.Set(Key, 0, 0, 1, 2)
	kv.Set(Key, 0, 2, 0, 4)
	kv.Set(Key, 0, 2, 1, -1)
	dst := make([]float32, 2)
	kv.Delta(Key, 0, 2, 0, dst)
	if dst[0] != 3 || dst[1] != -3 {
		t.Errorf("Delta = %v, want [3 -3]", dst)
	}
}

func TestLayerRMSEAndStd(t *testing.T) {
	kv := New(2, 2, 2)
	// Layer 0 all 1.0, layer 1 all 3.0.
	for _, kind := range Kinds {
		for tt := 0; tt < 2; tt++ {
			for c := 0; c < 2; c++ {
				kv.Set(kind, 0, tt, c, 1)
				kv.Set(kind, 1, tt, c, 3)
			}
		}
	}
	other := kv.Clone()
	// Perturb layer 1 of the copy by +2 everywhere.
	for _, kind := range Kinds {
		for tt := 0; tt < 2; tt++ {
			for c := 0; c < 2; c++ {
				other.Set(kind, 1, tt, c, 5)
			}
		}
	}
	rmse, err := kv.LayerRMSE(other)
	if err != nil {
		t.Fatal(err)
	}
	if rmse[0] != 0 {
		t.Errorf("layer 0 rmse = %v, want 0", rmse[0])
	}
	if math.Abs(rmse[1]-2) > 1e-9 {
		t.Errorf("layer 1 rmse = %v, want 2", rmse[1])
	}
	std := kv.LayerStd()
	if std[0] != 0 || std[1] != 0 {
		t.Errorf("constant layers should have zero std, got %v", std)
	}
}

func TestLayerRMSEShapeMismatch(t *testing.T) {
	a, b := New(1, 2, 2), New(1, 3, 2)
	if _, err := a.LayerRMSE(b); err == nil {
		t.Error("LayerRMSE accepted shape mismatch")
	}
	if _, err := a.MaxAbsDiff(b); err == nil {
		t.Error("MaxAbsDiff accepted shape mismatch")
	}
}

func TestCloneIndependent(t *testing.T) {
	kv := New(1, 1, 1)
	kv.Set(Key, 0, 0, 0, 5)
	c := kv.Clone()
	c.Set(Key, 0, 0, 0, 9)
	if kv.At(Key, 0, 0, 0) != 5 {
		t.Error("Clone aliases source")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kv := randomKV(rng, 1+rng.Intn(3), 1+rng.Intn(20), 1+rng.Intn(8))
		var buf bytes.Buffer
		if _, err := kv.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadKV(&buf)
		if err != nil {
			return false
		}
		d, err := kv.MaxAbsDiff(got)
		return err == nil && d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSerializationDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kv := randomKV(rng, 2, 4, 3)
	var buf bytes.Buffer
	if _, err := kv.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one payload byte (past the header).
	data[20] ^= 0xFF
	if _, err := ReadKV(bytes.NewReader(data)); err == nil {
		t.Error("ReadKV accepted corrupted payload")
	}
}

func TestSerializationRejectsBadMagicAndTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	kv := randomKV(rng, 1, 2, 2)
	var buf bytes.Buffer
	if _, err := kv.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	bad := append([]byte{}, data...)
	copy(bad, "XXXX")
	if _, err := ReadKV(bytes.NewReader(bad)); err == nil {
		t.Error("ReadKV accepted bad magic")
	}

	for _, n := range []int{0, 3, 10, len(data) - 1} {
		if _, err := ReadKV(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("ReadKV accepted truncation to %d bytes", n)
		}
	}
}

func TestSerializationRejectsHugeDims(t *testing.T) {
	hdr := []byte(kvMagic)
	hdr = append(hdr, 0xFF, 0xFF, 0xFF, 0xFF) // layers
	hdr = append(hdr, 0xFF, 0xFF, 0xFF, 0xFF) // tokens
	hdr = append(hdr, 0xFF, 0xFF, 0xFF, 0xFF) // channels
	if _, err := ReadKV(bytes.NewReader(hdr)); err == nil {
		t.Error("ReadKV accepted implausible dimensions")
	}
}

func TestKindString(t *testing.T) {
	if Key.String() != "K" || Value.String() != "V" {
		t.Errorf("Kind strings: %s %s", Key, Value)
	}
}

func BenchmarkSliceTokens(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	kv := randomKV(rng, 16, 1024, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kv.SliceTokens(100, 900); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteTo(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	kv := randomKV(rng, 8, 256, 64)
	b.SetBytes(int64(kv.Elems() * 2 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := kv.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCopyTokensAt(t *testing.T) {
	src := New(3, 7, 5)
	for i := range src.K {
		src.K[i] = float32(i)
		src.V[i] = -float32(i)
	}
	dst := New(3, 12, 5)
	if err := dst.CopyTokensAt(4, src, 2, 6); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 3; l++ {
		for dt := 0; dt < 12; dt++ {
			for c := 0; c < 5; c++ {
				var wantK, wantV float32
				if dt >= 4 && dt < 8 {
					st := dt - 4 + 2
					wantK = src.At(Key, l, st, c)
					wantV = src.At(Value, l, st, c)
				}
				if got := dst.At(Key, l, dt, c); got != wantK {
					t.Fatalf("K(%d,%d,%d) = %v, want %v", l, dt, c, got, wantK)
				}
				if got := dst.At(Value, l, dt, c); got != wantV {
					t.Fatalf("V(%d,%d,%d) = %v, want %v", l, dt, c, got, wantV)
				}
			}
		}
	}

	// Piecewise CopyTokensAt must equal ConcatTokens.
	a, b := New(2, 3, 4), New(2, 5, 4)
	rng := func(s []float32, base float32) {
		for i := range s {
			s[i] = base + float32(i)*0.5
		}
	}
	rng(a.K, 1)
	rng(a.V, 100)
	rng(b.K, 1000)
	rng(b.V, 10000)
	want, err := ConcatTokens(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := New(2, 8, 4)
	if err := got.CopyTokensAt(0, a, 0, a.Tokens); err != nil {
		t.Fatal(err)
	}
	if err := got.CopyTokensAt(a.Tokens, b, 0, b.Tokens); err != nil {
		t.Fatal(err)
	}
	if d, err := want.MaxAbsDiff(got); err != nil || d != 0 {
		t.Fatalf("piecewise copy differs from concat (diff %v, err %v)", d, err)
	}

	// Validation.
	if err := dst.CopyTokensAt(0, New(2, 3, 5), 0, 3); err == nil {
		t.Error("accepted layer mismatch")
	}
	if err := dst.CopyTokensAt(0, src, 3, 9); err == nil {
		t.Error("accepted out-of-range source slice")
	}
	if err := dst.CopyTokensAt(9, src, 0, 7); err == nil {
		t.Error("accepted overflowing destination range")
	}
	if err := dst.CopyTokensAt(-1, src, 0, 1); err == nil {
		t.Error("accepted negative destination offset")
	}
}
