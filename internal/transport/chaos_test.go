package transport

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestServerCorruption checks the wire-corruption fault: with rate 1 the
// served payload differs from the stored bytes (in exactly one byte),
// the store itself stays intact, the injection counter advances, and
// healing (rate 0) restores clean serving.
func TestServerCorruption(t *testing.T) {
	store := seededStore(t)
	srv := NewServer(store)
	cConn, sConn := net.Pipe()
	go srv.HandleConn(sConn)
	t.Cleanup(func() { srv.Close() })
	client := NewClient(cConn)
	t.Cleanup(func() { client.Close() })

	ctx := context.Background()
	man, err := client.GetManifest(ctx, "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	hash := man.Hashes[0][0]
	clean, err := store.GetChunk(ctx, hash)
	if err != nil {
		t.Fatal(err)
	}

	srv.SetCorruption(1, 42)
	got, err := client.GetChunkData(ctx, hash)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, clean) {
		t.Fatal("corruption rate 1 served clean bytes")
	}
	diff := 0
	for i := range got {
		if got[i] != clean[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
	}
	if n := srv.CorruptionInjected(); n != 1 {
		t.Fatalf("CorruptionInjected = %d, want 1", n)
	}
	if stored, _ := store.GetChunk(ctx, hash); !bytes.Equal(stored, clean) {
		t.Fatal("corruption mutated the store's bytes")
	}

	srv.SetCorruption(0, 0)
	got, err = client.GetChunkData(ctx, hash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, clean) {
		t.Fatal("healed server still serving corrupt bytes")
	}
	if n := srv.CorruptionInjected(); n != 1 {
		t.Fatalf("CorruptionInjected after heal = %d, want 1", n)
	}
}

// TestServerCorruptionDeterministic: the same seed produces the same
// corruption decisions, so a chaos run replays bit-for-bit.
func TestServerCorruptionDeterministic(t *testing.T) {
	store := seededStore(t)
	ctx := context.Background()
	man, err := store.GetManifest(ctx, "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	serve := func() []byte {
		srv := NewServer(store)
		srv.SetCorruption(0.5, 7)
		var out []byte
		for i := 0; i < 8; i++ {
			data, err := store.GetChunk(ctx, man.Hashes[0][0])
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, srv.maybeCorrupt(data)...)
		}
		return out
	}
	if !bytes.Equal(serve(), serve()) {
		t.Fatal("same seed produced different corruption patterns")
	}
}

// TestServerPartition: a partition severs live connections and rejects
// new ones; healing lets fresh connections through again.
func TestServerPartition(t *testing.T) {
	srv := NewServer(seededStore(t))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	addr := ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.GetManifest(ctx, "doc-1"); err != nil {
		t.Fatalf("pre-partition request: %v", err)
	}

	srv.SetPartitioned(true)
	if _, err := client.GetManifest(ctx, "doc-1"); err == nil {
		t.Fatal("request over a severed connection succeeded")
	}
	client.Close()
	if c2, err := Dial(addr); err == nil {
		if _, err := c2.GetManifest(ctx, "doc-1"); err == nil {
			t.Fatal("request through a partition succeeded")
		}
		c2.Close()
	}

	srv.SetPartitioned(false)
	c3, err := Dial(addr)
	if err != nil {
		t.Fatalf("post-heal dial: %v", err)
	}
	defer c3.Close()
	if _, err := c3.GetManifest(ctx, "doc-1"); err != nil {
		t.Fatalf("post-heal request: %v", err)
	}
}

// TestServerDynamicEgress: SetEgressRate/SetEgressTrace re-shape live
// connections, and a nil trace reverts to the static rate.
func TestServerDynamicEgress(t *testing.T) {
	srv := NewServer(seededStore(t), WithEgressRate(8e6))
	cConn, sConn := net.Pipe()
	go srv.HandleConn(sConn)
	t.Cleanup(func() { srv.Close() })
	client := NewClient(cConn)
	t.Cleanup(func() { client.Close() })

	// The handler registers its shaper before reading frames; one
	// round-trip guarantees registration has happened.
	if _, err := client.GetManifest(context.Background(), "doc-1"); err != nil {
		t.Fatal(err)
	}
	liveShaper := func() *Shaper {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		for _, sh := range srv.shapers {
			return sh
		}
		return nil
	}
	sh := liveShaper()
	if sh == nil {
		t.Fatal("no shaper registered for live connection")
	}
	if got := sh.Rate(); got != 8e6 {
		t.Fatalf("initial shaper rate = %v, want 8e6", got)
	}

	srv.SetEgressRate(2e6)
	if got := sh.Rate(); got != 2e6 {
		t.Fatalf("after SetEgressRate shaper rate = %v, want 2e6", got)
	}
	srv.SetEgressTrace(netsim.Constant(5e5))
	if got := sh.Rate(); got != 5e5 {
		t.Fatalf("after SetEgressTrace shaper rate = %v, want 5e5", got)
	}
	srv.SetEgressTrace(nil)
	if got := sh.Rate(); got != 2e6 {
		t.Fatalf("after clearing trace shaper rate = %v, want 2e6", got)
	}
}
