package transport

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/storage"
)

// RemoteError is an error reported by the server.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// Client speaks both protocol planes over one connection: serialized
// request/response round trips for the control verbs, and any number of
// concurrently open server-push chunk streams. A reader goroutine owns
// the receive side and demultiplexes: stream frames route to their
// stream by id, everything else answers the oldest pending round trip
// (requests are written serialized, and the server answers a
// connection's requests in order, so FIFO matching is exact). Safe for
// concurrent use.
type Client struct {
	conn net.Conn

	// wmu serializes frame writes; round trips also register their
	// response waiter under it so waiter order matches wire order.
	wmu sync.Mutex
	bw  *bufio.Writer

	mu      sync.Mutex
	waiters []chan respFrame
	streams map[uint64]*Stream
	nextID  uint64
	err     error

	done chan struct{} // closed when the reader exits (connection dead)
}

type respFrame struct {
	typ     byte
	payload []byte
	err     error
}

// NewClient wraps an established connection and starts its reader.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		streams: map[uint64]*Stream{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Dial connects to a server at a TCP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// Close closes the connection; pending round trips and open streams
// fail.
func (c *Client) Close() error { return c.conn.Close() }

// Err returns the terminal connection error, or nil while healthy.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// readLoop owns the receive side until the connection dies.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			c.fail(fmt.Errorf("transport: connection lost: %w", err))
			return
		}
		switch typ {
		case typeStreamData, typeStreamEnd, typeStreamError:
			if err := c.routeStream(typ, payload); err != nil {
				c.fail(err)
				return
			}
		default:
			c.mu.Lock()
			if len(c.waiters) == 0 {
				c.mu.Unlock()
				c.fail(fmt.Errorf("%w: unsolicited response frame 0x%02x", ErrProtocol, typ))
				return
			}
			w := c.waiters[0]
			c.waiters = c.waiters[1:]
			c.mu.Unlock()
			w <- respFrame{typ: typ, payload: payload} // buffered; never blocks
		}
	}
}

// routeStream delivers one stream-plane frame to its stream. Frames for
// unknown ids are dropped (a stream closed locally races the server's
// in-flight pushes).
func (c *Client) routeStream(typ byte, payload []byte) error {
	switch typ {
	case typeStreamData:
		h, data, err := decodeDataFrame(payload)
		if err != nil {
			return err
		}
		s := c.stream(h.id)
		if s == nil {
			return nil
		}
		return s.deliver(streamEvent{frame: StreamFrame{
			Arrived: time.Now(),
			Pos:     h.pos, Level: h.level, Offset: h.offset, Total: h.total, Last: h.last,
			Data: data,
		}})
	case typeStreamEnd:
		id, rest, err := decodeStreamID(payload)
		if err != nil || len(rest) != 0 {
			return fmt.Errorf("%w: bad stream end", ErrProtocol)
		}
		if s := c.stream(id); s != nil {
			return s.deliver(streamEvent{err: errStreamEnd})
		}
		return nil
	case typeStreamError:
		id, rest, err := decodeStreamID(payload)
		if err != nil {
			return fmt.Errorf("%w: bad stream error", ErrProtocol)
		}
		if s := c.stream(id); s != nil {
			return s.deliver(streamEvent{err: remoteErr(string(rest))})
		}
		return nil
	}
	return nil
}

func (c *Client) stream(id uint64) *Stream {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.streams[id]
}

func (c *Client) dropStream(id uint64) {
	c.mu.Lock()
	delete(c.streams, id)
	c.mu.Unlock()
}

// fail records the terminal error once, unblocks every pending round
// trip and stream, and closes the connection.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	waiters := c.waiters
	c.waiters = nil
	c.mu.Unlock()
	for _, w := range waiters {
		w <- respFrame{err: err}
	}
	close(c.done) // streams blocked in Recv observe this
	c.conn.Close()
}

// send writes one fire-and-forget frame (stream control plane).
func (c *Client) send(typ byte, payload []byte) error {
	if err := c.Err(); err != nil {
		return err
	}
	c.wmu.Lock()
	err := writeFrame(c.bw, typ, payload)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("transport: send: %w", err))
		return err
	}
	return nil
}

// roundTrip sends one request frame and waits for its response. The
// context bounds the wait; an abandoned wait leaves the waiter
// registered, so the eventual response is consumed and discarded and
// later round trips stay aligned.
func (c *Client) roundTrip(ctx context.Context, typ byte, payload []byte) (byte, []byte, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	ch := make(chan respFrame, 1)
	c.wmu.Lock()
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		c.wmu.Unlock()
		return 0, nil, err
	}
	c.waiters = append(c.waiters, ch)
	c.mu.Unlock()
	// The response wait is bounded by the select below, but the write
	// itself can block (a peer that stopped reading); bound it with the
	// context deadline too. The deadline is scoped to this write — wmu
	// serializes writers, and it is cleared before the lock drops.
	if deadline, ok := ctx.Deadline(); ok {
		c.conn.SetWriteDeadline(deadline)
	}
	err := writeFrame(c.bw, typ, payload)
	if err == nil {
		err = c.bw.Flush()
	}
	if _, ok := ctx.Deadline(); ok {
		c.conn.SetWriteDeadline(time.Time{})
	}
	if err != nil {
		// A deadline that expired before any of this frame reached the
		// wire leaves the connection perfectly aligned — the whole frame
		// is still sitting in the write buffer (nothing else can be: wmu
		// holders always flush fully or fail the connection). Withdraw
		// this call's waiter (still the newest; wmu is held) and keep the
		// connection for the streams and callers sharing it. Anything
		// else — bytes partially written, a dead socket — is fatal.
		if errors.Is(err, os.ErrDeadlineExceeded) && c.bw.Buffered() == frameHeaderSize+len(payload) {
			c.bw.Reset(c.conn)
			c.mu.Lock()
			c.waiters = c.waiters[:len(c.waiters)-1]
			c.mu.Unlock()
			c.wmu.Unlock()
			if ctxErr := ctx.Err(); ctxErr != nil {
				return 0, nil, ctxErr
			}
			return 0, nil, fmt.Errorf("transport: send: %w", err)
		}
		c.wmu.Unlock()
		c.fail(fmt.Errorf("transport: send: %w", err))
		return 0, nil, err
	}
	c.wmu.Unlock()
	select {
	case r := <-ch:
		if r.err != nil {
			return 0, nil, fmt.Errorf("transport: reading response: %w", r.err)
		}
		return r.typ, r.payload, nil
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	}
}

// OpenChunkStream opens a server-push context stream. The server starts
// pushing immediately; consume with Recv. The context only gates the
// open itself — pass it to Recv to bound waits.
func (c *Client) OpenChunkStream(ctx context.Context, req StreamRequest) (ChunkStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := req.normalize(); err != nil {
		return nil, err
	}
	open := streamOpen{
		Level:     req.Level,
		Window:    req.Window,
		FrameSize: req.FrameSize,
		Format:    req.Format,
		Chunks:    make([]streamOpenChunk, len(req.Chunks)),
	}
	for i, ch := range req.Chunks {
		open.Chunks[i] = streamOpenChunk{Index: ch.Index, Offset: ch.Offset, Level: ch.Level, Hashes: ch.Hashes}
	}

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	s := &Stream{
		c:      c,
		id:     id,
		window: req.Window,
		// Sized for every frame one window can hold: full frames plus the
		// sub-frame tail each chunk (or cancel restart) may produce.
		inbox: make(chan streamEvent, int(req.Window)/req.FrameSize+len(req.Chunks)+32),
	}
	c.streams[id] = s
	c.mu.Unlock()

	open.ID = id
	data, err := json.Marshal(open)
	if err != nil {
		c.dropStream(id)
		return nil, fmt.Errorf("transport: encoding stream open: %w", err)
	}
	if err := c.send(typeStreamOpen, data); err != nil {
		c.dropStream(id)
		return nil, err
	}
	return s, nil
}

// errStreamEnd marks a clean END internally; Recv converts it to io.EOF.
var errStreamEnd = errors.New("stream end")

// remoteErr maps a server-reported error string back to a typed error:
// not-found and corrupt-manifest conditions re-wrap their sentinel so
// callers (and the cluster pool's failover logic) can distinguish
// "context missing" from "node broken" across the wire.
func remoteErr(msg string) error {
	if strings.Contains(msg, "not found") {
		return fmt.Errorf("%w: %s", storage.ErrNotFound, msg)
	}
	if strings.Contains(msg, "corrupt manifest") {
		return fmt.Errorf("%w: %s", storage.ErrCorruptManifest, msg)
	}
	return &RemoteError{Msg: msg}
}

// GetManifest fetches a context's manifest.
func (c *Client) GetManifest(ctx context.Context, contextID string) (storage.Manifest, error) {
	typ, payload, err := c.roundTrip(ctx, typeReqManifest, []byte(contextID))
	if err != nil {
		return storage.Manifest{}, err
	}
	switch typ {
	case typeRespManifest:
		var man storage.Manifest
		if err := json.Unmarshal(payload, &man); err != nil {
			return storage.Manifest{}, fmt.Errorf("%w: bad manifest payload: %v", ErrProtocol, err)
		}
		return man, nil
	case typeError:
		return storage.Manifest{}, remoteErr(string(payload))
	default:
		return storage.Manifest{}, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// GetMeta fetches a context's metadata (a manifest round trip; kept for
// callers that only need the layout).
func (c *Client) GetMeta(ctx context.Context, contextID string) (storage.ContextMeta, error) {
	man, err := c.GetManifest(ctx, contextID)
	if err != nil {
		return storage.ContextMeta{}, err
	}
	return man.Meta, nil
}

// DeleteContext drops a context's manifest on the server, releasing its
// payload references for the node's sweeper.
func (c *Client) DeleteContext(ctx context.Context, contextID string) error {
	typ, payload, err := c.roundTrip(ctx, typeReqDelete, []byte(contextID))
	if err != nil {
		return err
	}
	switch typ {
	case typeRespDelete:
		return nil
	case typeError:
		return remoteErr(string(payload))
	default:
		return fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// Sweep runs one garbage-collection sweep on the server with the given
// grace age and returns its accounting.
func (c *Client) Sweep(ctx context.Context, minAge time.Duration) (storage.SweepResult, error) {
	typ, payload, err := c.roundTrip(ctx, typeReqSweep, encodeSweepReq(minAge))
	if err != nil {
		return storage.SweepResult{}, err
	}
	switch typ {
	case typeRespSweep:
		var res storage.SweepResult
		if err := json.Unmarshal(payload, &res); err != nil {
			return storage.SweepResult{}, fmt.Errorf("%w: bad sweep payload: %v", ErrProtocol, err)
		}
		return res, nil
	case typeError:
		return storage.SweepResult{}, remoteErr(string(payload))
	default:
		return storage.SweepResult{}, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// Usage reports the server store's physical footprint.
func (c *Client) Usage(ctx context.Context) (storage.Usage, error) {
	typ, payload, err := c.roundTrip(ctx, typeReqUsage, nil)
	if err != nil {
		return storage.Usage{}, err
	}
	switch typ {
	case typeRespUsage:
		var u storage.Usage
		if err := json.Unmarshal(payload, &u); err != nil {
			return storage.Usage{}, fmt.Errorf("%w: bad usage payload: %v", ErrProtocol, err)
		}
		return u, nil
	case typeError:
		return storage.Usage{}, remoteErr(string(payload))
	default:
		return storage.Usage{}, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// GetBank fetches the server's serialised codec model bank.
func (c *Client) GetBank(ctx context.Context) ([]byte, error) {
	typ, payload, err := c.roundTrip(ctx, typeReqBank, nil)
	if err != nil {
		return nil, err
	}
	switch typ {
	case typeRespBank:
		return payload, nil
	case typeError:
		return nil, &RemoteError{Msg: string(payload)}
	default:
		return nil, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// GetChunkData fetches one chunk payload by content hash.
func (c *Client) GetChunkData(ctx context.Context, hash string) ([]byte, error) {
	typ, payload, err := c.roundTrip(ctx, typeReqChunk, []byte(hash))
	if err != nil {
		return nil, err
	}
	switch typ {
	case typeRespChunk:
		return payload, nil
	case typeError:
		return nil, remoteErr(string(payload))
	default:
		return nil, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}
