// Package transport implements the wire path between the KV storage
// server and the inference server: a length-prefixed frame protocol over
// any net.Conn, a token-bucket bandwidth shaper for emulating constrained
// links on real sockets, and the server/client pair the streamer uses to
// fetch context chunks (§4: "streaming the encoded KV bitstream through a
// network connection of varying throughput").
//
// The protocol has two planes sharing one connection. The control plane
// is strict request/response in the content-addressed store's vocabulary:
// clients fetch a context's manifest by id and chunk payloads by hash,
// and the management ops (delete, sweep, usage) drive the fleet's
// reference-counted garbage collection remotely. The delivery plane is a
// multiplexed server-push stream: the client opens a context stream with
// a manifest slice and an initial encoding level, the server pushes
// bounded DATA frames, and the client steers mid-stream with SWITCH
// (re-level chunks not yet started), CANCEL (abandon the in-flight chunk
// and restart it cheaper), and CREDIT (backpressure) frames — the
// sub-chunk granularity the §5.3 adaptation loop needs to react to
// bandwidth shifts while a chunk is still in the air.
//
// The virtual-time experiments (internal/netsim) bypass sockets entirely;
// this package is the live path, exercised by the integration tests and
// the cachegen-server / cachegen-client binaries.
package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// frame types. 0x01–0x0C are the request/response control-plane verbs;
// 0x10–0x17 are the stream plane, every one carrying a stream id as its
// first payload field.
const (
	typeReqManifest  byte = 0x01
	typeRespManifest byte = 0x02
	typeReqChunk     byte = 0x03 // payload: content hash
	typeRespChunk    byte = 0x04
	typeReqBank      byte = 0x05
	typeRespBank     byte = 0x06
	typeReqDelete    byte = 0x07 // payload: context id
	typeRespDelete   byte = 0x08
	typeReqSweep     byte = 0x09 // payload: varint minAge (nanoseconds)
	typeRespSweep    byte = 0x0A // payload: JSON storage.SweepResult
	typeReqUsage     byte = 0x0B
	typeRespUsage    byte = 0x0C // payload: JSON storage.Usage

	typeStreamOpen   byte = 0x10 // C→S: JSON streamOpen (manifest slice + initial level)
	typeStreamCredit byte = 0x11 // C→S: uvarint id, uvarint bytes granted
	typeStreamSwitch byte = 0x12 // C→S: uvarint id, varint level (chunks not yet started)
	typeStreamCancel byte = 0x13 // C→S: uvarint id, uvarint pos, varint level (restart in-flight chunk)
	typeStreamClose  byte = 0x14 // C→S: uvarint id (abandon the whole stream)
	typeStreamData   byte = 0x15 // S→C: data header + payload slice
	typeStreamEnd    byte = 0x16 // S→C: uvarint id (all chunks delivered)
	typeStreamError  byte = 0x17 // S→C: uvarint id, error text

	typeError byte = 0x7F
)

// MaxFramePayload bounds a single frame. Chunk bitstreams are tens of MB
// at most (1500 tokens × large models); 1 GiB leaves generous headroom
// while rejecting nonsense lengths from corrupt peers.
const MaxFramePayload = 1 << 30

// frameAllocStep bounds how much readFrame allocates ahead of bytes that
// have actually arrived. A length prefix is attacker-controlled; the
// bytes behind it are not, so a peer claiming a huge frame and hanging
// up costs one step of memory, not MaxFramePayload.
const frameAllocStep = 1 << 20

var frameMagic = [2]byte{'C', 'G'}

// frameHeaderSize is the fixed frame prefix: magic(2) + type(1) + len(4).
const frameHeaderSize = 7

// ErrProtocol reports a malformed frame or unexpected message.
var ErrProtocol = errors.New("transport: protocol error")

// writeFrame writes one frame: magic | type | len(u32) | payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("%w: payload of %d bytes exceeds limit", ErrProtocol, len(payload))
	}
	hdr := make([]byte, 7)
	hdr[0], hdr[1] = frameMagic[0], frameMagic[1]
	hdr[2] = typ
	binary.BigEndian.PutUint32(hdr[3:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("transport: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("transport: writing frame payload: %w", err)
	}
	return nil
}

// readFrame reads one frame, enforcing the payload limit.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	hdr := make([]byte, 7)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	if hdr[0] != frameMagic[0] || hdr[1] != frameMagic[1] {
		return 0, nil, fmt.Errorf("%w: bad magic %x", ErrProtocol, hdr[:2])
	}
	n := binary.BigEndian.Uint32(hdr[3:])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, n)
	}
	payload, err = readPayload(r, int(n))
	if err != nil {
		return 0, nil, fmt.Errorf("transport: reading frame payload: %w", err)
	}
	return hdr[2], payload, nil
}

// readPayload reads an n-byte frame payload, growing the buffer only as
// data arrives so a lying length prefix cannot force a huge allocation.
func readPayload(r io.Reader, n int) ([]byte, error) {
	if n <= frameAllocStep {
		p := make([]byte, n)
		if _, err := io.ReadFull(r, p); err != nil {
			return nil, err
		}
		return p, nil
	}
	buf := bytes.NewBuffer(make([]byte, 0, frameAllocStep))
	m, err := io.Copy(buf, io.LimitReader(r, int64(n)))
	if err != nil {
		return nil, err
	}
	if m < int64(n) {
		return nil, io.ErrUnexpectedEOF
	}
	return buf.Bytes(), nil
}

// sweep request payload: varint duration in nanoseconds.

func encodeSweepReq(minAge time.Duration) []byte {
	return binary.AppendVarint(nil, int64(minAge))
}

func decodeSweepReq(p []byte) (time.Duration, error) {
	v, k := binary.Varint(p)
	if k <= 0 || v < 0 {
		return 0, fmt.Errorf("%w: bad sweep min-age", ErrProtocol)
	}
	return time.Duration(v), nil
}
