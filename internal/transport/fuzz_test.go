package transport

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadFrame: arbitrary byte streams must never panic the frame reader.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, typeReqManifest, []byte("doc-1")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CGxxxxxx"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = readFrame(bytes.NewReader(data))
	})
}

// FuzzDecodeSweepReq: arbitrary request payloads must never panic.
func FuzzDecodeSweepReq(f *testing.F) {
	f.Add(encodeSweepReq(0))
	f.Add(encodeSweepReq(5 * time.Minute))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		minAge, err := decodeSweepReq(data)
		if err == nil {
			if minAge < 0 {
				t.Fatalf("decoded negative min-age %v", minAge)
			}
			// A payload that decodes must round-trip.
			again, err2 := decodeSweepReq(encodeSweepReq(minAge))
			if err2 != nil || again != minAge {
				t.Fatalf("re-encode mismatch: %v vs %v, %v", minAge, again, err2)
			}
		}
	})
}
