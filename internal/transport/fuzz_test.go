package transport

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadFrame: arbitrary byte streams must never panic the frame
// reader, and multi-frame inputs (interleaved stream ids, truncated
// tails) must fail cleanly at the corrupt frame, not before.
func FuzzReadFrame(f *testing.F) {
	frame := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(frame(typeReqManifest, []byte("doc-1")))
	f.Add([]byte{})
	f.Add([]byte("CGxxxxxx"))

	// Stream-plane seeds: a DATA frame, control frames, and two streams'
	// frames interleaved on one connection.
	data1 := appendDataHeader(nil, dataHeader{id: 1, pos: 0, level: 0, offset: 0, total: 100, last: false})
	data1 = append(data1, make([]byte, 64)...)
	data2 := appendDataHeader(nil, dataHeader{id: 2, pos: 3, level: -1, offset: 64, total: 128, last: true})
	data2 = append(data2, make([]byte, 64)...)
	f.Add(frame(typeStreamData, data1))
	f.Add(append(frame(typeStreamData, data1), frame(typeStreamData, data2)...))
	f.Add(append(append(frame(typeStreamData, data2), frame(typeStreamCredit, encodeCredit(1, 65536))...),
		frame(typeStreamEnd, encodeStreamID(2))...))
	f.Add(frame(typeStreamOpen, []byte(`{"id":1,"level":0,"window":65536,"frame":4096,"chunks":[{"i":0,"h":{"0":"ab"}}]}`)))
	f.Add(frame(typeStreamSwitch, encodeSwitch(1, 2)))
	f.Add(frame(typeStreamCancel, encodeCancel(1, 0, -1)))
	f.Add(frame(typeStreamError, append(encodeStreamID(7), []byte("not found")...)))

	// Truncated DATA frame: header promises more payload than follows.
	truncated := frame(typeStreamData, data1)
	f.Add(truncated[:len(truncated)-40])
	// Length prefix claiming far more than is behind it.
	lying := frame(typeRespChunk, make([]byte, 8))
	lying[3], lying[4], lying[5], lying[6] = 0x00, 0xFF, 0xFF, 0xFF
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 64; i++ { // bounded: each frame consumes ≥7 bytes
			typ, payload, err := readFrame(r)
			if err != nil {
				return
			}
			// Frames that parse must decode without panicking either.
			switch typ {
			case typeStreamData:
				_, _, _ = decodeDataFrame(payload)
			case typeStreamCredit:
				_, _, _ = decodeCredit(payload)
			case typeStreamSwitch:
				_, _, _ = decodeSwitch(payload)
			case typeStreamCancel:
				_, _, _, _ = decodeCancel(payload)
			case typeStreamEnd, typeStreamClose, typeStreamError:
				_, _, _ = decodeStreamID(payload)
			}
		}
	})
}

// FuzzStreamControl: the fixed-layout stream codecs must never panic and
// must round-trip whatever they accept.
func FuzzStreamControl(f *testing.F) {
	f.Add(encodeCredit(1, 65536))
	f.Add(encodeSwitch(2, -1))
	f.Add(encodeCancel(3, 7, 1))
	f.Add(encodeStreamID(1 << 62))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Varints are not canonical (padded encodings decode to the same
		// value), so the property is a semantic round trip: whatever
		// decodes must survive encode→decode unchanged.
		if id, n, err := decodeCredit(data); err == nil {
			if n < 0 {
				t.Fatalf("credit decoded negative grant %d", n)
			}
			id2, n2, err2 := decodeCredit(encodeCredit(id, n))
			if err2 != nil || id2 != id || n2 != n {
				t.Fatalf("credit round trip: (%d,%d) vs (%d,%d), %v", id, n, id2, n2, err2)
			}
		}
		if id, lv, err := decodeSwitch(data); err == nil {
			id2, lv2, err2 := decodeSwitch(encodeSwitch(id, lv))
			if err2 != nil || id2 != id || lv2 != lv {
				t.Fatalf("switch round trip: (%d,%d) vs (%d,%d), %v", id, lv, id2, lv2, err2)
			}
		}
		if id, pos, lv, err := decodeCancel(data); err == nil {
			if pos < 0 {
				t.Fatalf("cancel decoded negative position %d", pos)
			}
			id2, pos2, lv2, err2 := decodeCancel(encodeCancel(id, pos, lv))
			if err2 != nil || id2 != id || pos2 != pos || lv2 != lv {
				t.Fatalf("cancel round trip: (%d,%d,%d) vs (%d,%d,%d), %v", id, pos, lv, id2, pos2, lv2, err2)
			}
		}
		_, _, _ = decodeDataFrame(data)
	})
}

// FuzzDecodeSweepReq: arbitrary request payloads must never panic.
func FuzzDecodeSweepReq(f *testing.F) {
	f.Add(encodeSweepReq(0))
	f.Add(encodeSweepReq(5 * time.Minute))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		minAge, err := decodeSweepReq(data)
		if err == nil {
			if minAge < 0 {
				t.Fatalf("decoded negative min-age %v", minAge)
			}
			// A payload that decodes must round-trip.
			again, err2 := decodeSweepReq(encodeSweepReq(minAge))
			if err2 != nil || again != minAge {
				t.Fatalf("re-encode mismatch: %v vs %v, %v", minAge, again, err2)
			}
		}
	})
}
