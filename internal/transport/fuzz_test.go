package transport

import (
	"bytes"
	"testing"

	"repro/internal/storage"
)

// FuzzReadFrame: arbitrary byte streams must never panic the frame reader.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, typeReqMeta, []byte("doc-1")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CGxxxxxx"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = readFrame(bytes.NewReader(data))
	})
}

// FuzzDecodeChunkReq: arbitrary request payloads must never panic.
func FuzzDecodeChunkReq(f *testing.F) {
	f.Add(encodeChunkReq("doc", 3, 1))
	f.Add(encodeChunkReq("", 0, storage.TextLevel))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, chunk, level, err := decodeChunkReq(data)
		if err == nil {
			// A payload that decodes must round-trip.
			again := encodeChunkReq(id, chunk, level)
			id2, c2, l2, err2 := decodeChunkReq(again)
			if err2 != nil || id2 != id || c2 != chunk || l2 != level {
				t.Fatalf("re-encode mismatch: (%q,%d,%d) vs (%q,%d,%d), %v",
					id, chunk, level, id2, c2, l2, err2)
			}
		}
	})
}
