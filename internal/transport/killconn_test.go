package transport

import (
	"context"
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// TestClientKillConnMidStream: when the connection dies under a live
// stream, every blocked caller — the consumer in Recv, a round-trip
// waiter pending on the control plane — must fail promptly with the
// terminal connection error, well inside its own deadline, not at it.
// A fetcher that learns of a dead node seconds late has already lost
// the failover race the resilience layer is trying to win.
func TestClientKillConnMidStream(t *testing.T) {
	fx := newStreamFixture(t, 4, 400_000, 50_000)
	srv := NewServer(fx.store)
	// ~250 KB/s keeps the 1.6 MB stream mid-flight for seconds, so the
	// kill lands with the consumer genuinely blocked.
	srv.SetEgressRate(2e6)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // returns on Close
	t.Cleanup(func() { srv.Close() })

	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s, err := client.OpenChunkStream(ctx, StreamRequest{Chunks: fx.chunks, Level: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(ctx); err != nil {
		t.Fatalf("first Recv: %v", err)
	}

	// Stall the control plane so a round trip is parked server-side when
	// the connection dies (the flaky fault doubles as a convenient
	// "server that stopped answering").
	srv.SetFlaky(1.0, 2*time.Second, 0, 1)
	rtErr := make(chan error, 1)
	go func() {
		_, err := client.Usage(ctx)
		rtErr <- err
	}()
	recvErr := make(chan error, 1)
	go func() {
		for {
			if _, err := s.Recv(ctx); err != nil {
				recvErr <- err
				return
			}
		}
	}()
	// Let both waiters park: the round trip inside the server's stall,
	// the consumer inside the shaped stream.
	time.Sleep(100 * time.Millisecond)

	start := time.Now()
	srv.Close()
	const bound = 500 * time.Millisecond
	for name, ch := range map[string]chan error{"stream Recv": recvErr, "round trip": rtErr} {
		select {
		case err := <-ch:
			if err == nil {
				t.Fatalf("%s returned nil after the connection died", name)
			}
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatalf("%s surfaced a deadline (%v), want the connection error", name, err)
			}
		case <-time.After(bound):
			t.Fatalf("%s still blocked %v after the connection died", name, bound)
		}
	}
	if took := time.Since(start); took > bound {
		t.Errorf("waiters released in %v, want < %v", took, bound)
	}

	// The client is terminally failed: later calls fail immediately, no
	// fresh deadline burned.
	if client.Err() == nil {
		t.Fatal("client.Err() nil after connection death")
	}
	quick, qcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer qcancel()
	start = time.Now()
	if _, err := client.GetManifest(quick, "doc-1"); err == nil {
		t.Fatal("GetManifest succeeded on a dead connection")
	}
	if _, err := s.Recv(quick); err == nil {
		t.Fatal("Recv succeeded on a dead connection")
	}
	if took := time.Since(start); took > bound {
		t.Errorf("post-mortem calls took %v, want immediate failure", took)
	}
}
