package transport

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// Server serves chunk and metadata requests from a storage.Store over
// the frame protocol — the storage-server side of get_kv (§6). Each
// accepted connection is handled on its own goroutine. Control-plane
// requests within a connection are processed sequentially (responses
// stay in request order); each open chunk stream pushes DATA frames from
// its own goroutine, interleaved with responses through a per-connection
// write lock, so a long stream never blocks the control plane.
type Server struct {
	store       storage.Store
	egress      float64      // per-connection egress shaping, bits/s (≤0 = unlimited)
	egressTrace netsim.Trace // per-connection egress trace replay (overrides egress)
	bank        []byte       // serialised codec model bank served to clients
	logf        func(format string, args ...any)

	// tele is the server's slice of a live metrics registry; its nil
	// instruments no-op when telemetry is not wired.
	tele struct {
		streams *telemetry.Counter
		frames  *telemetry.Counter
		bytes   *telemetry.Counter
		control *telemetry.Counter
	}

	mu          sync.Mutex
	ln          net.Listener
	conns       map[net.Conn]struct{}
	shapers     map[net.Conn]*Shaper
	closed      bool
	partitioned bool

	// Wire-corruption fault injection (chaos): a seeded rng decides per
	// served chunk whether to flip one byte of a copy. The counter is how
	// the chaos report proves every injected corruption was caught by the
	// client's CRC rather than silently decoded.
	corruptMu   sync.Mutex
	corruptRate float64
	corruptRng  *rand.Rand
	corrupted   atomic.Uint64

	// Flaky fault injection (chaos): a seeded rng makes a fraction of
	// requests pathological — most strikes stall the request by a fixed
	// delay (a browning-out node), the rest sever the connection (a
	// crashing one). The strike counter feeds the chaos accounting.
	flakyMu      sync.Mutex
	flakyRate    float64
	flakyDelay   time.Duration
	flakyErrFrac float64
	flakyRng     *rand.Rand
	flakyStruck  atomic.Uint64
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithEgressRate shapes every connection's sends to bps bits per second,
// emulating a constrained storage-to-GPU link.
func WithEgressRate(bps float64) ServerOption {
	return func(s *Server) { s.egress = bps }
}

// WithEgressTrace shapes every connection's sends along a time-varying
// bandwidth trace, each connection replaying the trace from its accept
// time — the live-socket twin of the netsim experiments, so a harness
// run and a real client can face the same bandwidth cliff.
func WithEgressTrace(tr netsim.Trace) ServerOption {
	return func(s *Server) { s.egressTrace = tr }
}

// WithLogger sets a log function (default: log.Printf-compatible no-op).
func WithLogger(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithBank serves the given serialised codec model bank to clients that
// request it, so a fresh inference server can bootstrap the decoder for
// this store's LLM without out-of-band files (§5.2: the bank is profiled
// once per LLM, offline).
func WithBank(bank []byte) ServerOption {
	return func(s *Server) { s.bank = append([]byte{}, bank...) }
}

// WithTelemetry registers the server's live instruments — open
// connections, streams opened, DATA frames/bytes pushed, control-plane
// requests — into reg. Nil reg (or omitting the option) costs nothing.
func WithTelemetry(reg *telemetry.Registry) ServerOption {
	return func(s *Server) {
		s.tele.streams = reg.Counter("cachegen_transport_streams_opened_total", "server-push chunk streams opened")
		s.tele.frames = reg.Counter("cachegen_transport_frames_pushed_total", "DATA frames pushed to clients")
		s.tele.bytes = reg.Counter("cachegen_transport_pushed_bytes_total", "DATA payload bytes pushed to clients")
		s.tele.control = reg.Counter("cachegen_transport_control_requests_total", "control-plane requests answered")
		if reg != nil {
			reg.GaugeFunc("cachegen_transport_conns", "open client connections", func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(len(s.conns))
			})
		}
	}
}

// NewServer returns a server over the given store.
func NewServer(store storage.Store, opts ...ServerOption) *Server {
	s := &Server{
		store:   store,
		conns:   map[net.Conn]struct{}{},
		shapers: map[net.Conn]*Shaper{},
		logf:    func(string, ...any) {},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// SetPartitioned simulates a network partition: while on, established
// connections are severed and new ones are dropped at accept, so clients
// see dial/connection errors exactly as they would from an unreachable
// region. Turning it off heals the partition; clients reconnect on their
// next attempt.
func (s *Server) SetPartitioned(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.partitioned = on
	if on {
		for c := range s.conns {
			c.Close()
		}
	}
}

// Partitioned reports whether the server is currently partitioned.
func (s *Server) Partitioned() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.partitioned
}

// SetEgressRate changes every connection's egress shaping (bits per
// second; ≤0 = unlimited) while the server runs — live and future
// connections alike. It clears any egress trace.
func (s *Server) SetEgressRate(bps float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.egress = bps
	s.egressTrace = nil
	for _, sh := range s.shapers {
		sh.SetRate(bps)
	}
}

// SetEgressTrace replays a time-varying bandwidth trace on every
// connection, t=0 anchored now — the chaos subsystem's bandwidth cliff.
// A nil trace reverts to the static egress rate.
func (s *Server) SetEgressTrace(tr netsim.Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.egressTrace = tr
	for _, sh := range s.shapers {
		if tr != nil {
			sh.SetTrace(tr)
		} else {
			sh.SetRate(s.egress)
		}
	}
}

// SetCorruption makes the server flip one byte in a fraction rate
// (0..1) of served chunk payloads, both request/response and streamed,
// using a deterministic rng seeded with seed. The flip happens in a
// copy, so the store's bytes stay intact — this models wire or NIC
// corruption, which the client-side CRC must catch. Rate ≤0 heals.
func (s *Server) SetCorruption(rate float64, seed int64) {
	s.corruptMu.Lock()
	defer s.corruptMu.Unlock()
	s.corruptRate = rate
	s.corruptRng = rand.New(rand.NewSource(seed))
}

// CorruptionInjected reports how many served payloads were corrupted.
func (s *Server) CorruptionInjected() uint64 { return s.corrupted.Load() }

// SetFlaky makes the server strike a fraction rate (0..1) of requests:
// a strike either stalls the request by delay (a node browning out) or,
// with probability errFrac, severs the connection mid-request (a node
// crashing under it). Strikes are rolled per control-plane request and
// per stream open with a deterministic rng seeded with seed, so chaos
// runs replay. Rate ≤0 heals.
func (s *Server) SetFlaky(rate float64, delay time.Duration, errFrac float64, seed int64) {
	s.flakyMu.Lock()
	defer s.flakyMu.Unlock()
	s.flakyRate = rate
	s.flakyDelay = delay
	s.flakyErrFrac = errFrac
	s.flakyRng = rand.New(rand.NewSource(seed))
}

// FlakyInjected reports how many requests the flaky fault struck.
func (s *Server) FlakyInjected() uint64 { return s.flakyStruck.Load() }

// errFlaky is the injected failure a flaky strike surfaces when it
// decides to sever: dispatch returns it, and the connection dies just
// as it would under a real mid-request crash.
var errFlaky = errors.New("flaky fault injected: connection severed")

// flakyStrike rolls the flaky fault for one request. sever means the
// connection must be dropped; otherwise delay (possibly zero) is how
// long to stall before answering.
func (s *Server) flakyStrike() (sever bool, delay time.Duration) {
	s.flakyMu.Lock()
	defer s.flakyMu.Unlock()
	if s.flakyRate <= 0 || s.flakyRng.Float64() >= s.flakyRate {
		return false, 0
	}
	s.flakyStruck.Add(1)
	if s.flakyErrFrac > 0 && s.flakyRng.Float64() < s.flakyErrFrac {
		return true, 0
	}
	return false, s.flakyDelay
}

// maybeCorrupt returns payload, or a copy with one byte flipped when the
// corruption fault decides to strike.
func (s *Server) maybeCorrupt(payload []byte) []byte {
	s.corruptMu.Lock()
	if s.corruptRate <= 0 || len(payload) == 0 || s.corruptRng.Float64() >= s.corruptRate {
		s.corruptMu.Unlock()
		return payload
	}
	i := s.corruptRng.Intn(len(payload))
	s.corruptMu.Unlock()
	out := append([]byte(nil), payload...)
	out[i] ^= 0xff
	s.corrupted.Add(1)
	return out
}

// Serve accepts connections on ln until Close. It always returns a
// non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Close ran before Serve registered the listener; it must not
		// stay bound (connects would sit in its accept backlog forever,
		// and a restart on the same address would fail to bind).
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr (TCP) and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return err
}

// HandleConn serves one pre-established connection (used with net.Pipe in
// tests and by custom acceptors). It returns when the peer disconnects.
func (s *Server) HandleConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.handle(conn)
}

// serverConn is one connection's state: the shared write side and the
// open streams pushed over it.
type serverConn struct {
	srv  *Server
	conn net.Conn

	wmu sync.Mutex
	bw  *bufio.Writer

	mu      sync.Mutex
	streams map[uint64]*serverStream
	wg      sync.WaitGroup // stream pushers
}

func (s *Server) handle(conn net.Conn) {
	// Every connection goes through a Shaper (a zero-rate shaper is a
	// passthrough) so SetEgressRate/SetEgressTrace can re-shape live
	// connections — how the chaos bandwidth-cliff fault lands mid-stream.
	s.mu.Lock()
	if s.partitioned {
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		return
	}
	sh := NewShaper(conn, s.egress)
	if s.egressTrace != nil {
		sh.SetTrace(s.egressTrace)
	}
	s.shapers[conn] = sh
	s.mu.Unlock()
	sc := &serverConn{
		srv:     s,
		conn:    conn,
		bw:      bufio.NewWriterSize(sh, 64<<10),
		streams: map[uint64]*serverStream{},
	}
	defer func() {
		// Wake every pusher so it observes the teardown, then reap them
		// before the connection is forgotten — no pusher survives its
		// connection.
		sc.mu.Lock()
		for _, st := range sc.streams {
			st.close()
		}
		sc.mu.Unlock()
		conn.Close()
		sc.wg.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		delete(s.shapers, conn)
		s.mu.Unlock()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return // disconnect or garbage; drop the connection
		}
		if err := sc.dispatch(typ, payload); err != nil {
			s.logf("transport: connection %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// write sends one frame through the connection's shared write side.
func (sc *serverConn) write(typ byte, payload []byte) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	if err := writeFrame(sc.bw, typ, payload); err != nil {
		return err
	}
	return sc.bw.Flush()
}

// dispatch handles one inbound frame: stream-plane frames steer or open
// streams; everything else is a control-plane request answered in line.
func (sc *serverConn) dispatch(typ byte, payload []byte) error {
	switch typ {
	case typeStreamOpen:
		if sever, delay := sc.srv.flakyStrike(); sever {
			return errFlaky
		} else if delay > 0 {
			time.Sleep(delay)
		}
		return sc.openStream(payload)
	case typeStreamCredit:
		id, n, err := decodeCredit(payload)
		if err != nil {
			return err
		}
		if st := sc.stream(id); st != nil {
			st.grant(n)
		}
		return nil
	case typeStreamSwitch:
		id, level, err := decodeSwitch(payload)
		if err != nil {
			return err
		}
		if st := sc.stream(id); st != nil {
			st.switchLevel(level)
		}
		return nil
	case typeStreamCancel:
		id, pos, level, err := decodeCancel(payload)
		if err != nil {
			return err
		}
		if st := sc.stream(id); st != nil {
			st.cancel(pos, level)
		}
		return nil
	case typeStreamClose:
		id, rest, err := decodeStreamID(payload)
		if err != nil || len(rest) != 0 {
			return fmt.Errorf("%w: bad stream close", ErrProtocol)
		}
		if st := sc.stream(id); st != nil {
			st.close()
		}
		return nil
	default:
		if sever, delay := sc.srv.flakyStrike(); sever {
			return errFlaky
		} else if delay > 0 {
			time.Sleep(delay)
		}
		sc.srv.tele.control.Inc()
		rtyp, rpayload := sc.srv.respond(typ, payload)
		return sc.write(rtyp, rpayload)
	}
}

// respond computes the control-plane response for one request frame.
func (s *Server) respond(typ byte, payload []byte) (byte, []byte) {
	ctx := context.Background()
	fail := func(err error) (byte, []byte) { return typeError, []byte(err.Error()) }
	asJSON := func(rtyp byte, v any) (byte, []byte) {
		data, err := json.Marshal(v)
		if err != nil {
			return fail(err)
		}
		return rtyp, data
	}
	switch typ {
	case typeReqManifest:
		man, err := s.store.GetManifest(ctx, string(payload))
		if err != nil {
			return fail(err)
		}
		return asJSON(typeRespManifest, man)

	case typeReqChunk:
		data, err := s.store.GetChunk(ctx, string(payload))
		if err != nil {
			return fail(err)
		}
		return typeRespChunk, s.maybeCorrupt(data)

	case typeReqBank:
		if len(s.bank) == 0 {
			return typeError, []byte("no model bank configured")
		}
		return typeRespBank, s.bank

	case typeReqDelete:
		if err := s.store.DeleteContext(ctx, string(payload)); err != nil {
			return fail(err)
		}
		return typeRespDelete, nil

	case typeReqSweep:
		minAge, err := decodeSweepReq(payload)
		if err != nil {
			return fail(err)
		}
		res, err := s.store.Sweep(ctx, minAge)
		if err != nil {
			return fail(err)
		}
		return asJSON(typeRespSweep, res)

	case typeReqUsage:
		u, err := s.store.Usage(ctx)
		if err != nil {
			return fail(err)
		}
		return asJSON(typeRespUsage, u)

	default:
		return typeError, []byte(fmt.Sprintf("unknown frame type 0x%02x", typ))
	}
}

func (sc *serverConn) stream(id uint64) *serverStream {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.streams[id]
}

func (sc *serverConn) removeStream(id uint64) {
	sc.mu.Lock()
	delete(sc.streams, id)
	sc.mu.Unlock()
}

// openStream validates a stream open and starts its pusher.
func (sc *serverConn) openStream(payload []byte) error {
	var open streamOpen
	if err := json.Unmarshal(payload, &open); err != nil {
		return fmt.Errorf("%w: bad stream open: %v", ErrProtocol, err)
	}
	if len(open.Chunks) == 0 || len(open.Chunks) > 1<<20 {
		return fmt.Errorf("%w: stream open with %d chunks", ErrProtocol, len(open.Chunks))
	}
	if open.FrameSize <= 0 || open.FrameSize > MaxStreamFrame {
		return fmt.Errorf("%w: stream frame size %d", ErrProtocol, open.FrameSize)
	}
	if open.Window < int64(open.FrameSize) {
		return fmt.Errorf("%w: stream window %d below frame size", ErrProtocol, open.Window)
	}
	if open.Format < 0 {
		return fmt.Errorf("%w: stream format %d", ErrProtocol, open.Format)
	}
	st := &serverStream{
		id:        open.ID,
		frameSize: open.FrameSize,
		chunks:    open.Chunks,
		credit:    open.Window,
		level:     open.Level,
	}
	st.cond = sync.NewCond(&st.mu)
	sc.mu.Lock()
	if _, dup := sc.streams[open.ID]; dup {
		sc.mu.Unlock()
		return fmt.Errorf("%w: duplicate stream id %d", ErrProtocol, open.ID)
	}
	sc.streams[open.ID] = st
	sc.wg.Add(1)
	sc.mu.Unlock()
	sc.srv.tele.streams.Inc()
	go sc.push(st)
	return nil
}

// serverStream is the sender side of one open chunk stream.
type serverStream struct {
	id        uint64
	frameSize int
	chunks    []streamOpenChunk

	mu     sync.Mutex
	cond   *sync.Cond
	credit int64
	level  int // delivery level for chunks not yet started
	// cancel of the in-flight chunk: pending restart at restartLevel.
	restartPending bool
	restartLevel   int
	current        int // pusher's current chunk position
	closed         bool
}

// grant adds credit (a CREDIT frame arrived).
func (st *serverStream) grant(n int64) {
	if n <= 0 {
		return
	}
	st.mu.Lock()
	st.credit += n
	st.mu.Unlock()
	st.cond.Signal()
}

// switchLevel re-levels chunks not yet started.
func (st *serverStream) switchLevel(level int) {
	st.mu.Lock()
	st.level = level
	st.mu.Unlock()
}

// cancel abandons the chunk at pos if it is in flight (restarting it at
// level), or re-levels it for later if not yet started. Positions
// already delivered are left alone — the client holds their bytes.
func (st *serverStream) cancel(pos, level int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case pos < st.current || pos >= len(st.chunks):
		return
	case pos == st.current:
		st.restartPending = true
		st.restartLevel = level
		st.cond.Signal()
	default:
		st.chunks[pos].Level = &level
	}
}

// close wakes and stops the pusher.
func (st *serverStream) close() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
	st.cond.Signal()
}

// creditAction is what waitCredit tells the pusher to do next.
type creditAction int

const (
	creditSend creditAction = iota
	creditRestart
	creditStop
)

// waitCredit blocks until n bytes of credit are available, the chunk is
// cancelled, or the stream is torn down.
func (st *serverStream) waitCredit(n int64) (creditAction, int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.closed {
			return creditStop, 0
		}
		if st.restartPending {
			st.restartPending = false
			return creditRestart, st.restartLevel
		}
		if st.credit >= n {
			st.credit -= n
			return creditSend, 0
		}
		st.cond.Wait()
	}
}

// startChunk records the pusher's position and returns the chunk plus
// its starting level (per-chunk override, else the stream level). The
// copy is taken under the lock because cancel writes the element's
// Level field concurrently.
func (st *serverStream) startChunk(pos int) (streamOpenChunk, int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.current = pos
	st.restartPending = false
	ch := st.chunks[pos]
	if ch.Level != nil {
		return ch, *ch.Level
	}
	return ch, st.level
}

// push delivers every chunk of one stream in order, honoring credit,
// mid-stream level switches and in-flight cancels. It owns the stream's
// registry entry and exits on teardown or a dead connection.
func (sc *serverConn) push(st *serverStream) {
	defer sc.wg.Done()
	defer sc.removeStream(st.id)
	ctx := context.Background()
	scratch := make([]byte, 0, st.frameSize+64)

	fail := func(msg string) {
		payload := append(encodeStreamID(st.id), msg...)
		_ = sc.write(typeStreamError, payload)
	}

	for pos := 0; pos < len(st.chunks); pos++ {
		ch, level := st.startChunk(pos)
		resumeAt := ch.Offset // first delivery of this chunk may resume
		for {
			hash, ok := ch.Hashes[level]
			if !ok {
				fail(fmt.Sprintf("chunk %d has no payload at level %d", ch.Index, level))
				return
			}
			payload, err := sc.srv.store.GetChunk(ctx, hash)
			if err != nil {
				fail(err.Error())
				return
			}
			payload = sc.srv.maybeCorrupt(payload)
			total := int64(len(payload))
			offset := resumeAt
			resumeAt = 0 // a restart re-sends from the top
			if offset > total {
				fail(fmt.Sprintf("chunk %d resume offset %d beyond payload size %d", ch.Index, offset, total))
				return
			}
			restarted := false
			for {
				n := total - offset
				if n > int64(st.frameSize) {
					n = int64(st.frameSize)
				}
				action, restartLevel := st.waitCredit(n)
				if action == creditStop {
					return
				}
				if action == creditRestart {
					if restartLevel == level {
						// Restarting at the same level would only resend
						// bytes the client already holds; keep going.
						continue
					}
					level = restartLevel
					restarted = true
					break
				}
				hdr := dataHeader{id: st.id, pos: pos, level: level,
					offset: offset, total: total, last: offset+n == total}
				scratch = appendDataHeader(scratch[:0], hdr)
				scratch = append(scratch, payload[offset:offset+n]...)
				if err := sc.write(typeStreamData, scratch); err != nil {
					return // connection dead; teardown reaps us
				}
				sc.srv.tele.frames.Inc()
				sc.srv.tele.bytes.Add(n)
				offset += n
				if offset == total {
					break
				}
			}
			if !restarted {
				break // chunk fully delivered
			}
		}
	}
	_ = sc.write(typeStreamEnd, encodeStreamID(st.id))
}
