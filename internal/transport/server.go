package transport

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/storage"
)

// Server serves chunk and metadata requests from a storage.Store over the
// frame protocol — the storage-server side of get_kv (§6). Each accepted
// connection is handled on its own goroutine; requests within a
// connection are processed sequentially (the streamer fetches chunks one
// by one, §5.3).
type Server struct {
	store  storage.Store
	egress float64 // per-connection egress shaping, bits/s (≤0 = unlimited)
	bank   []byte  // serialised codec model bank served to clients
	logf   func(format string, args ...any)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithEgressRate shapes every connection's sends to bps bits per second,
// emulating a constrained storage-to-GPU link.
func WithEgressRate(bps float64) ServerOption {
	return func(s *Server) { s.egress = bps }
}

// WithLogger sets a log function (default: log.Printf-compatible no-op).
func WithLogger(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithBank serves the given serialised codec model bank to clients that
// request it, so a fresh inference server can bootstrap the decoder for
// this store's LLM without out-of-band files (§5.2: the bank is profiled
// once per LLM, offline).
func WithBank(bank []byte) ServerOption {
	return func(s *Server) { s.bank = append([]byte{}, bank...) }
}

// NewServer returns a server over the given store.
func NewServer(store storage.Store, opts ...ServerOption) *Server {
	s := &Server{store: store, conns: map[net.Conn]struct{}{}, logf: func(string, ...any) {}}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve accepts connections on ln until Close. It always returns a
// non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr (TCP) and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return err
}

// HandleConn serves one pre-established connection (used with net.Pipe in
// tests and by custom acceptors). It returns when the peer disconnects.
func (s *Server) HandleConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.handle(conn)
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	var w net.Conn = conn
	if s.egress > 0 {
		w = NewShaper(conn, s.egress)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(w, 64<<10)

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return // disconnect or garbage; drop the connection
		}
		if err := s.dispatch(bw, typ, payload); err != nil {
			s.logf("transport: connection %v: %v", conn.RemoteAddr(), err)
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(w *bufio.Writer, typ byte, payload []byte) error {
	ctx := context.Background()
	switch typ {
	case typeReqManifest:
		man, err := s.store.GetManifest(ctx, string(payload))
		if err != nil {
			return writeFrame(w, typeError, []byte(err.Error()))
		}
		data, err := json.Marshal(man)
		if err != nil {
			return writeFrame(w, typeError, []byte(err.Error()))
		}
		return writeFrame(w, typeRespManifest, data)

	case typeReqChunk:
		data, err := s.store.GetChunk(ctx, string(payload))
		if err != nil {
			return writeFrame(w, typeError, []byte(err.Error()))
		}
		return writeFrame(w, typeRespChunk, data)

	case typeReqBank:
		if len(s.bank) == 0 {
			return writeFrame(w, typeError, []byte("no model bank configured"))
		}
		return writeFrame(w, typeRespBank, s.bank)

	case typeReqDelete:
		if err := s.store.DeleteContext(ctx, string(payload)); err != nil {
			return writeFrame(w, typeError, []byte(err.Error()))
		}
		return writeFrame(w, typeRespDelete, nil)

	case typeReqSweep:
		minAge, err := decodeSweepReq(payload)
		if err != nil {
			return writeFrame(w, typeError, []byte(err.Error()))
		}
		res, err := s.store.Sweep(ctx, minAge)
		if err != nil {
			return writeFrame(w, typeError, []byte(err.Error()))
		}
		data, err := json.Marshal(res)
		if err != nil {
			return writeFrame(w, typeError, []byte(err.Error()))
		}
		return writeFrame(w, typeRespSweep, data)

	case typeReqUsage:
		u, err := s.store.Usage(ctx)
		if err != nil {
			return writeFrame(w, typeError, []byte(err.Error()))
		}
		data, err := json.Marshal(u)
		if err != nil {
			return writeFrame(w, typeError, []byte(err.Error()))
		}
		return writeFrame(w, typeRespUsage, data)

	default:
		return writeFrame(w, typeError, []byte(fmt.Sprintf("unknown frame type 0x%02x", typ)))
	}
}

// RemoteError is an error reported by the server.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// Client fetches metadata and chunks from a Server. It is safe for
// concurrent use; requests are serialised over the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
}

// Dial connects to a server at a TCP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request frame and reads one response frame, honoring
// the context deadline via the connection deadline.
func (c *Client) roundTrip(ctx context.Context, typ byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	deadline, ok := ctx.Deadline()
	if ok {
		if err := c.conn.SetDeadline(deadline); err != nil {
			return 0, nil, fmt.Errorf("transport: %w", err)
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	if err := writeFrame(c.bw, typ, payload); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, fmt.Errorf("transport: flush: %w", err)
	}
	rtyp, rpayload, err := readFrame(c.br)
	if err != nil {
		return 0, nil, fmt.Errorf("transport: reading response: %w", err)
	}
	return rtyp, rpayload, nil
}

// remoteErr maps a server-reported error string back to a typed error:
// not-found and corrupt-manifest conditions re-wrap their sentinel so
// callers (and the cluster pool's failover logic) can distinguish
// "context missing" from "node broken" across the wire.
func remoteErr(msg string) error {
	if strings.Contains(msg, "not found") {
		return fmt.Errorf("%w: %s", storage.ErrNotFound, msg)
	}
	if strings.Contains(msg, "corrupt manifest") {
		return fmt.Errorf("%w: %s", storage.ErrCorruptManifest, msg)
	}
	return &RemoteError{Msg: msg}
}

// GetManifest fetches a context's manifest.
func (c *Client) GetManifest(ctx context.Context, contextID string) (storage.Manifest, error) {
	typ, payload, err := c.roundTrip(ctx, typeReqManifest, []byte(contextID))
	if err != nil {
		return storage.Manifest{}, err
	}
	switch typ {
	case typeRespManifest:
		var man storage.Manifest
		if err := json.Unmarshal(payload, &man); err != nil {
			return storage.Manifest{}, fmt.Errorf("%w: bad manifest payload: %v", ErrProtocol, err)
		}
		return man, nil
	case typeError:
		return storage.Manifest{}, remoteErr(string(payload))
	default:
		return storage.Manifest{}, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// GetMeta fetches a context's metadata (a manifest round trip; kept for
// callers that only need the layout).
func (c *Client) GetMeta(ctx context.Context, contextID string) (storage.ContextMeta, error) {
	man, err := c.GetManifest(ctx, contextID)
	if err != nil {
		return storage.ContextMeta{}, err
	}
	return man.Meta, nil
}

// DeleteContext drops a context's manifest on the server, releasing its
// payload references for the node's sweeper.
func (c *Client) DeleteContext(ctx context.Context, contextID string) error {
	typ, payload, err := c.roundTrip(ctx, typeReqDelete, []byte(contextID))
	if err != nil {
		return err
	}
	switch typ {
	case typeRespDelete:
		return nil
	case typeError:
		return remoteErr(string(payload))
	default:
		return fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// Sweep runs one garbage-collection sweep on the server with the given
// grace age and returns its accounting.
func (c *Client) Sweep(ctx context.Context, minAge time.Duration) (storage.SweepResult, error) {
	typ, payload, err := c.roundTrip(ctx, typeReqSweep, encodeSweepReq(minAge))
	if err != nil {
		return storage.SweepResult{}, err
	}
	switch typ {
	case typeRespSweep:
		var res storage.SweepResult
		if err := json.Unmarshal(payload, &res); err != nil {
			return storage.SweepResult{}, fmt.Errorf("%w: bad sweep payload: %v", ErrProtocol, err)
		}
		return res, nil
	case typeError:
		return storage.SweepResult{}, remoteErr(string(payload))
	default:
		return storage.SweepResult{}, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// Usage reports the server store's physical footprint.
func (c *Client) Usage(ctx context.Context) (storage.Usage, error) {
	typ, payload, err := c.roundTrip(ctx, typeReqUsage, nil)
	if err != nil {
		return storage.Usage{}, err
	}
	switch typ {
	case typeRespUsage:
		var u storage.Usage
		if err := json.Unmarshal(payload, &u); err != nil {
			return storage.Usage{}, fmt.Errorf("%w: bad usage payload: %v", ErrProtocol, err)
		}
		return u, nil
	case typeError:
		return storage.Usage{}, remoteErr(string(payload))
	default:
		return storage.Usage{}, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// GetBank fetches the server's serialised codec model bank.
func (c *Client) GetBank(ctx context.Context) ([]byte, error) {
	typ, payload, err := c.roundTrip(ctx, typeReqBank, nil)
	if err != nil {
		return nil, err
	}
	switch typ {
	case typeRespBank:
		return payload, nil
	case typeError:
		return nil, &RemoteError{Msg: string(payload)}
	default:
		return nil, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// GetChunkData fetches one chunk payload by content hash.
func (c *Client) GetChunkData(ctx context.Context, hash string) ([]byte, error) {
	typ, payload, err := c.roundTrip(ctx, typeReqChunk, []byte(hash))
	if err != nil {
		return nil, err
	}
	switch typ {
	case typeRespChunk:
		return payload, nil
	case typeError:
		return nil, remoteErr(string(payload))
	default:
		return nil, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}
