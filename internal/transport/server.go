package transport

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/storage"
)

// Server serves chunk and metadata requests from a storage.Store over the
// frame protocol — the storage-server side of get_kv (§6). Each accepted
// connection is handled on its own goroutine; requests within a
// connection are processed sequentially (the streamer fetches chunks one
// by one, §5.3).
type Server struct {
	store  storage.Store
	egress float64 // per-connection egress shaping, bits/s (≤0 = unlimited)
	bank   []byte  // serialised codec model bank served to clients
	logf   func(format string, args ...any)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithEgressRate shapes every connection's sends to bps bits per second,
// emulating a constrained storage-to-GPU link.
func WithEgressRate(bps float64) ServerOption {
	return func(s *Server) { s.egress = bps }
}

// WithLogger sets a log function (default: log.Printf-compatible no-op).
func WithLogger(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithBank serves the given serialised codec model bank to clients that
// request it, so a fresh inference server can bootstrap the decoder for
// this store's LLM without out-of-band files (§5.2: the bank is profiled
// once per LLM, offline).
func WithBank(bank []byte) ServerOption {
	return func(s *Server) { s.bank = append([]byte{}, bank...) }
}

// NewServer returns a server over the given store.
func NewServer(store storage.Store, opts ...ServerOption) *Server {
	s := &Server{store: store, conns: map[net.Conn]struct{}{}, logf: func(string, ...any) {}}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve accepts connections on ln until Close. It always returns a
// non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr (TCP) and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return err
}

// HandleConn serves one pre-established connection (used with net.Pipe in
// tests and by custom acceptors). It returns when the peer disconnects.
func (s *Server) HandleConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.handle(conn)
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	var w net.Conn = conn
	if s.egress > 0 {
		w = NewShaper(conn, s.egress)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(w, 64<<10)

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return // disconnect or garbage; drop the connection
		}
		if err := s.dispatch(bw, typ, payload); err != nil {
			s.logf("transport: connection %v: %v", conn.RemoteAddr(), err)
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(w *bufio.Writer, typ byte, payload []byte) error {
	ctx := context.Background()
	switch typ {
	case typeReqMeta:
		meta, err := s.store.GetMeta(ctx, string(payload))
		if err != nil {
			return writeFrame(w, typeError, []byte(err.Error()))
		}
		data, err := json.Marshal(meta)
		if err != nil {
			return writeFrame(w, typeError, []byte(err.Error()))
		}
		return writeFrame(w, typeRespMeta, data)

	case typeReqChunk:
		id, chunk, level, err := decodeChunkReq(payload)
		if err != nil {
			return writeFrame(w, typeError, []byte(err.Error()))
		}
		data, err := s.store.Get(ctx, storage.ChunkKey{ContextID: id, Chunk: chunk, Level: level})
		if err != nil {
			return writeFrame(w, typeError, []byte(err.Error()))
		}
		return writeFrame(w, typeRespChunk, data)

	case typeReqBank:
		if len(s.bank) == 0 {
			return writeFrame(w, typeError, []byte("no model bank configured"))
		}
		return writeFrame(w, typeRespBank, s.bank)

	default:
		return writeFrame(w, typeError, []byte(fmt.Sprintf("unknown frame type 0x%02x", typ)))
	}
}

// RemoteError is an error reported by the server.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// Client fetches metadata and chunks from a Server. It is safe for
// concurrent use; requests are serialised over the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
}

// Dial connects to a server at a TCP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request frame and reads one response frame, honoring
// the context deadline via the connection deadline.
func (c *Client) roundTrip(ctx context.Context, typ byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	deadline, ok := ctx.Deadline()
	if ok {
		if err := c.conn.SetDeadline(deadline); err != nil {
			return 0, nil, fmt.Errorf("transport: %w", err)
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	if err := writeFrame(c.bw, typ, payload); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, fmt.Errorf("transport: flush: %w", err)
	}
	rtyp, rpayload, err := readFrame(c.br)
	if err != nil {
		return 0, nil, fmt.Errorf("transport: reading response: %w", err)
	}
	return rtyp, rpayload, nil
}

// GetMeta fetches a context's metadata.
func (c *Client) GetMeta(ctx context.Context, contextID string) (storage.ContextMeta, error) {
	typ, payload, err := c.roundTrip(ctx, typeReqMeta, []byte(contextID))
	if err != nil {
		return storage.ContextMeta{}, err
	}
	switch typ {
	case typeRespMeta:
		var meta storage.ContextMeta
		if err := json.Unmarshal(payload, &meta); err != nil {
			return storage.ContextMeta{}, fmt.Errorf("%w: bad meta payload: %v", ErrProtocol, err)
		}
		return meta, nil
	case typeError:
		msg := string(payload)
		// As in GetChunk, surface the server's not-found as
		// storage.ErrNotFound so callers (and the cluster pool's failover
		// logic) can distinguish "context missing" from "node broken".
		if strings.Contains(msg, "not found") {
			return storage.ContextMeta{}, fmt.Errorf("%w: %s", storage.ErrNotFound, msg)
		}
		return storage.ContextMeta{}, &RemoteError{Msg: msg}
	default:
		return storage.ContextMeta{}, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// GetBank fetches the server's serialised codec model bank.
func (c *Client) GetBank(ctx context.Context) ([]byte, error) {
	typ, payload, err := c.roundTrip(ctx, typeReqBank, nil)
	if err != nil {
		return nil, err
	}
	switch typ {
	case typeRespBank:
		return payload, nil
	case typeError:
		return nil, &RemoteError{Msg: string(payload)}
	default:
		return nil, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// GetChunk fetches one chunk payload at the given level (storage.TextLevel
// fetches the token text).
func (c *Client) GetChunk(ctx context.Context, contextID string, chunk, level int) ([]byte, error) {
	typ, payload, err := c.roundTrip(ctx, typeReqChunk, encodeChunkReq(contextID, chunk, level))
	if err != nil {
		return nil, err
	}
	switch typ {
	case typeRespChunk:
		return payload, nil
	case typeError:
		msg := string(payload)
		// Re-wrap the server's not-found errors so callers can test with
		// errors.Is(err, storage.ErrNotFound) across the wire.
		if strings.Contains(msg, "not found") {
			return nil, fmt.Errorf("%w: %s", storage.ErrNotFound, msg)
		}
		return nil, &RemoteError{Msg: msg}
	default:
		return nil, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}
