package transport

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Shaper throttles writes through a net.Conn to a configurable bandwidth
// using a token bucket, so the live socket path can emulate the
// constrained links of the evaluation (0.4–400 Gbps in Fig 11) on
// loopback. The rate may be changed while in use — that is how the demo
// binaries replay bandwidth traces.
type Shaper struct {
	net.Conn

	mu     sync.Mutex
	bps    float64   // bits per second
	tokens float64   // available bytes
	burst  float64   // bucket depth in bytes
	last   time.Time // last refill
}

// shaperSlice is the write granularity; small enough that rate changes
// take effect quickly, large enough to keep syscall overhead low.
const shaperSlice = 16 << 10

// NewShaper wraps conn, limiting writes to bps bits per second. A zero or
// negative bps means unlimited.
func NewShaper(conn net.Conn, bps float64) *Shaper {
	s := &Shaper{Conn: conn, last: time.Now()}
	s.setRate(bps)
	return s
}

// SetRate changes the target bandwidth (bits per second; ≤0 = unlimited).
func (s *Shaper) SetRate(bps float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refillLocked(time.Now())
	s.setRate(bps)
}

func (s *Shaper) setRate(bps float64) {
	s.bps = bps
	if bps > 0 {
		// A bucket of 50 ms worth of bytes keeps bursts short relative to
		// the chunk transfer times being emulated.
		s.burst = bps / 8 * 0.05
		if s.burst < shaperSlice {
			s.burst = shaperSlice
		}
		if s.tokens > s.burst {
			s.tokens = s.burst
		}
	}
}

// Rate returns the current target bandwidth in bits per second.
func (s *Shaper) Rate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bps
}

func (s *Shaper) refillLocked(now time.Time) {
	if s.bps <= 0 {
		return
	}
	dt := now.Sub(s.last).Seconds()
	if dt > 0 {
		s.tokens += s.bps / 8 * dt
		if s.tokens > s.burst {
			s.tokens = s.burst
		}
	}
	s.last = now
}

// take blocks until n bytes of budget are available, then consumes them.
func (s *Shaper) take(n int) error {
	for {
		s.mu.Lock()
		if s.bps <= 0 {
			s.mu.Unlock()
			return nil
		}
		now := time.Now()
		s.refillLocked(now)
		if s.tokens >= float64(n) {
			s.tokens -= float64(n)
			s.mu.Unlock()
			return nil
		}
		need := float64(n) - s.tokens
		wait := time.Duration(need / (s.bps / 8) * float64(time.Second))
		s.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		time.Sleep(wait)
	}
}

// Write implements net.Conn, pacing the payload through the token bucket
// in slices.
func (s *Shaper) Write(p []byte) (int, error) {
	var written int
	for len(p) > 0 {
		n := len(p)
		if n > shaperSlice {
			n = shaperSlice
		}
		if err := s.take(n); err != nil {
			return written, err
		}
		m, err := s.Conn.Write(p[:n])
		written += m
		if err != nil {
			return written, fmt.Errorf("transport: shaped write: %w", err)
		}
		p = p[m:]
	}
	return written, nil
}
