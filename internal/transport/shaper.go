package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/netsim"
)

// Shaper throttles bytes through a net.Conn to a configurable bandwidth
// using a token bucket, so the live socket path can emulate the
// constrained links of the evaluation (0.4–400 Gbps in Fig 11) on
// loopback. The rate may be changed while in use — including while a
// Write is blocked mid-transfer, which is how bandwidth traces replay:
// the pacing loop re-reads the rate every refill quantum, so a SetRate
// (or a trace step) takes effect within shaperQuantum, not after the
// current payload drains. NewShaper paces writes (a server emulating a
// constrained egress link); NewIngressShaper paces reads (a client
// emulating a constrained downlink from an unshaped server).
type Shaper struct {
	net.Conn

	shapeReads bool // pace Read instead of Write

	mu         sync.Mutex
	bps        float64   // bits per second
	tokens     float64   // available bytes
	burst      float64   // bucket depth in bytes
	last       time.Time // last refill
	trace      netsim.Trace
	traceStart time.Time
}

// shaperSlice is the pacing granularity; small enough that rate changes
// take effect quickly, large enough to keep syscall overhead low.
const shaperSlice = 16 << 10

// shaperQuantum bounds one pacing sleep. A blocked transfer re-examines
// the rate (and any trace) at this cadence, so a mid-write SetRate is
// honored on the next refill instead of after a sleep computed from the
// old rate.
const shaperQuantum = 10 * time.Millisecond

// NewShaper wraps conn, limiting writes to bps bits per second. A zero or
// negative bps means unlimited.
func NewShaper(conn net.Conn, bps float64) *Shaper {
	s := &Shaper{Conn: conn, last: time.Now()}
	s.setRate(bps)
	return s
}

// NewIngressShaper wraps conn, pacing reads to bps bits per second —
// the receiver-side emulation of a constrained link, used by the client
// CLI to replay bandwidth traces against an unshaped server.
func NewIngressShaper(conn net.Conn, bps float64) *Shaper {
	s := NewShaper(conn, bps)
	s.shapeReads = true
	return s
}

// SetRate changes the target bandwidth (bits per second; ≤0 = unlimited)
// and clears any trace.
func (s *Shaper) SetRate(bps float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refillLocked(time.Now())
	s.trace = nil
	s.setRate(bps)
}

// SetTrace replays a time-varying bandwidth trace, t=0 anchored now.
// The trace is sampled every refill, so its steps take effect within
// shaperQuantum even mid-transfer.
func (s *Shaper) SetTrace(tr netsim.Trace) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refillLocked(now)
	s.trace = tr
	s.traceStart = now
	if tr != nil {
		s.setRate(tr.BandwidthAt(0))
	}
}

func (s *Shaper) setRate(bps float64) {
	s.bps = bps
	if bps > 0 {
		// A bucket of 50 ms worth of bytes keeps bursts short relative to
		// the chunk transfer times being emulated.
		s.burst = bps / 8 * 0.05
		if s.burst < shaperSlice {
			s.burst = shaperSlice
		}
		if s.tokens > s.burst {
			s.tokens = s.burst
		}
	}
}

// Rate returns the current target bandwidth in bits per second.
func (s *Shaper) Rate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bps
}

func (s *Shaper) refillLocked(now time.Time) {
	if s.trace != nil {
		if bps := s.trace.BandwidthAt(now.Sub(s.traceStart)); bps != s.bps {
			s.setRate(bps)
		}
	}
	if s.bps <= 0 {
		return
	}
	dt := now.Sub(s.last).Seconds()
	if dt > 0 {
		s.tokens += s.bps / 8 * dt
		if s.tokens > s.burst {
			s.tokens = s.burst
		}
	}
	s.last = now
}

// take blocks until n bytes of budget are available, then consumes them.
// Sleeps are bounded by shaperQuantum so a concurrent SetRate (or a
// trace step) is honored promptly.
func (s *Shaper) take(n int) {
	for {
		s.mu.Lock()
		now := time.Now()
		s.refillLocked(now)
		if s.bps <= 0 {
			s.mu.Unlock()
			return
		}
		if s.tokens >= float64(n) {
			s.tokens -= float64(n)
			s.mu.Unlock()
			return
		}
		need := float64(n) - s.tokens
		wait := time.Duration(need / (s.bps / 8) * float64(time.Second))
		s.mu.Unlock()
		if wait > shaperQuantum {
			wait = shaperQuantum
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		time.Sleep(wait)
	}
}

// Write implements net.Conn, pacing the payload through the token bucket
// in slices (unless this is an ingress shaper, which passes writes
// through).
func (s *Shaper) Write(p []byte) (int, error) {
	if s.shapeReads {
		return s.Conn.Write(p)
	}
	var written int
	for len(p) > 0 {
		n := len(p)
		if n > shaperSlice {
			n = shaperSlice
		}
		s.take(n)
		m, err := s.Conn.Write(p[:n])
		written += m
		if err != nil {
			return written, fmt.Errorf("transport: shaped write: %w", err)
		}
		p = p[m:]
	}
	return written, nil
}

// Read implements net.Conn; an ingress shaper paces delivery of received
// bytes through the token bucket.
func (s *Shaper) Read(p []byte) (int, error) {
	if !s.shapeReads {
		return s.Conn.Read(p)
	}
	if len(p) > shaperSlice {
		p = p[:shaperSlice]
	}
	n, err := s.Conn.Read(p)
	if n > 0 {
		s.take(n)
	}
	return n, err
}
