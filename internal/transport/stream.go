package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Stream-plane limits. A DATA frame carries at most MaxStreamFrame bytes
// of chunk payload: small enough that the receiver's bandwidth estimator
// samples the link many times per chunk (the point of the exercise),
// large enough that header and syscall overhead stay negligible.
const (
	// DefaultFrameSize is the DATA frame payload bound when the opener
	// does not pick one (~64 KiB, the issue's granularity).
	DefaultFrameSize = 64 << 10
	// MaxStreamFrame is the hard DATA payload bound either side enforces.
	MaxStreamFrame = 256 << 10
	// DefaultStreamWindow is the credit window when the opener does not
	// pick one: how many pushed-but-unconsumed bytes may be in flight.
	DefaultStreamWindow = 1 << 20
)

// StreamChunk describes one chunk position in an open stream: its index
// in the context (echoed back in decode-metadata checks), the payload
// hash at every level the server might be switched to, and an optional
// resume offset for a chunk the client already holds a prefix of (a
// replica failover resuming mid-chunk).
type StreamChunk struct {
	// Index is the chunk's index in the context.
	Index int
	// Offset is how many payload bytes the client already holds; the
	// server starts pushing from here on this chunk's first delivery.
	Offset int64
	// Level, if non-nil, overrides the stream's level for this chunk (a
	// resumed chunk continues at the level it was being delivered at).
	Level *int
	// Hashes maps encoding level (including storage.TextLevel) to the
	// chunk's payload hash at that level.
	Hashes map[int]string
}

// StreamRequest opens a multiplexed context stream: the server pushes
// every chunk, in order, as bounded DATA frames.
type StreamRequest struct {
	// Chunks is the manifest slice to stream, in delivery order.
	Chunks []StreamChunk
	// Level is the initial encoding level for every chunk.
	Level int
	// Window is the credit window in bytes (0 = DefaultStreamWindow).
	Window int64
	// FrameSize bounds each DATA frame's payload (0 = DefaultFrameSize;
	// capped at MaxStreamFrame).
	FrameSize int
	// Format is the chunk container format version the receiver expects
	// (advisory — payloads self-describe via magic bytes; servers only
	// reject negative values). 0 means unspecified.
	Format int
}

// StreamFrame is one server-pushed slice of a chunk payload.
type StreamFrame struct {
	// Arrived is when the frame was read off the connection — stamped by
	// the reader goroutine, not by Recv, so a consumer that falls behind
	// (frames queueing in the inbox) still sees wire arrival times. The
	// bandwidth estimator must be fed these, or decode backpressure
	// masquerades as link slowness.
	Arrived time.Time
	// Pos is the chunk's position in the StreamRequest.Chunks slice.
	Pos int
	// Level is the encoding level this chunk is being delivered at. A
	// level change at Offset 0 for a position already partly received
	// means the chunk was cancelled and restarted — discard the prefix.
	Level int
	// Offset is this frame's byte offset within the chunk payload.
	Offset int64
	// Total is the chunk payload's full size at Level.
	Total int64
	// Last marks the final frame of this chunk.
	Last bool
	// Data is the payload slice.
	Data []byte
}

// ChunkStream is the receiver's handle on one open context stream. A
// transport.Stream is one connection's stream; a cluster.Pool returns a
// fleet adapter that splices per-node streams behind the same interface.
type ChunkStream interface {
	// Recv returns the next DATA frame, io.EOF after the final chunk, or
	// the stream's error. Consuming a frame replenishes the sender's
	// credit; a receiver that stops calling Recv stalls the push within
	// one window — that is the backpressure.
	Recv(ctx context.Context) (StreamFrame, error)
	// Switch changes the delivery level for chunks not yet started.
	Switch(level int) error
	// Cancel abandons the in-flight chunk at position pos and restarts
	// it from offset 0 at the given level (positions already delivered
	// are unaffected; positions not yet started inherit level when they
	// begin).
	Cancel(pos, level int) error
	// Close abandons the stream; the sender stops pushing.
	Close() error
}

// streamOpen is the wire form of StreamRequest (typeStreamOpen payload).
type streamOpen struct {
	ID        uint64            `json:"id"`
	Level     int               `json:"level"`
	Window    int64             `json:"window"`
	FrameSize int               `json:"frame"`
	Format    int               `json:"format,omitempty"`
	Chunks    []streamOpenChunk `json:"chunks"`
}

type streamOpenChunk struct {
	Index  int            `json:"i"`
	Offset int64          `json:"o,omitempty"`
	Level  *int           `json:"l,omitempty"`
	Hashes map[int]string `json:"h"`
}

// normalize applies defaults and clamps, rejecting nonsense requests.
func (r *StreamRequest) normalize() error {
	if len(r.Chunks) == 0 {
		return fmt.Errorf("%w: stream request has no chunks", ErrProtocol)
	}
	if r.Format < 0 {
		return fmt.Errorf("%w: stream format %d", ErrProtocol, r.Format)
	}
	if r.FrameSize <= 0 {
		r.FrameSize = DefaultFrameSize
	}
	if r.FrameSize > MaxStreamFrame {
		r.FrameSize = MaxStreamFrame
	}
	if r.Window <= 0 {
		r.Window = DefaultStreamWindow
	}
	// The credit replenish quantum is window/4; keep it at least one full
	// frame so the sender can never deadlock waiting for sub-frame credit.
	if min := 4 * int64(r.FrameSize); r.Window < min {
		r.Window = min
	}
	for i, ch := range r.Chunks {
		if len(ch.Hashes) == 0 {
			return fmt.Errorf("%w: stream chunk %d has no hashes", ErrProtocol, i)
		}
		if ch.Offset < 0 {
			return fmt.Errorf("%w: stream chunk %d has negative offset", ErrProtocol, i)
		}
	}
	return nil
}

// --- binary codecs for the fixed-layout stream frames ---

func encodeStreamID(id uint64) []byte {
	return binary.AppendUvarint(nil, id)
}

func decodeStreamID(p []byte) (uint64, []byte, error) {
	id, k := binary.Uvarint(p)
	if k <= 0 {
		return 0, nil, fmt.Errorf("%w: bad stream id", ErrProtocol)
	}
	return id, p[k:], nil
}

func encodeCredit(id uint64, n int64) []byte {
	p := binary.AppendUvarint(nil, id)
	return binary.AppendUvarint(p, uint64(n))
}

func decodeCredit(p []byte) (id uint64, n int64, err error) {
	id, rest, err := decodeStreamID(p)
	if err != nil {
		return 0, 0, err
	}
	v, k := binary.Uvarint(rest)
	if k <= 0 || len(rest[k:]) != 0 || v > MaxFramePayload*4 {
		return 0, 0, fmt.Errorf("%w: bad credit grant", ErrProtocol)
	}
	return id, int64(v), nil
}

func encodeSwitch(id uint64, level int) []byte {
	p := binary.AppendUvarint(nil, id)
	return binary.AppendVarint(p, int64(level))
}

func decodeSwitch(p []byte) (id uint64, level int, err error) {
	id, rest, err := decodeStreamID(p)
	if err != nil {
		return 0, 0, err
	}
	v, k := binary.Varint(rest)
	if k <= 0 || len(rest[k:]) != 0 {
		return 0, 0, fmt.Errorf("%w: bad switch level", ErrProtocol)
	}
	return id, int(v), nil
}

func encodeCancel(id uint64, pos, level int) []byte {
	p := binary.AppendUvarint(nil, id)
	p = binary.AppendUvarint(p, uint64(pos))
	return binary.AppendVarint(p, int64(level))
}

func decodeCancel(p []byte) (id uint64, pos, level int, err error) {
	id, rest, err := decodeStreamID(p)
	if err != nil {
		return 0, 0, 0, err
	}
	pv, k := binary.Uvarint(rest)
	if k <= 0 {
		return 0, 0, 0, fmt.Errorf("%w: bad cancel position", ErrProtocol)
	}
	rest = rest[k:]
	lv, k := binary.Varint(rest)
	if k <= 0 || len(rest[k:]) != 0 || pv > 1<<30 {
		return 0, 0, 0, fmt.Errorf("%w: bad cancel level", ErrProtocol)
	}
	return id, int(pv), int(lv), nil
}

// dataHeader is the fixed prefix of a typeStreamData payload.
type dataHeader struct {
	id     uint64
	pos    int
	level  int
	offset int64
	total  int64
	last   bool
}

func appendDataHeader(dst []byte, h dataHeader) []byte {
	dst = binary.AppendUvarint(dst, h.id)
	dst = binary.AppendUvarint(dst, uint64(h.pos))
	dst = binary.AppendVarint(dst, int64(h.level))
	dst = binary.AppendUvarint(dst, uint64(h.offset))
	dst = binary.AppendUvarint(dst, uint64(h.total))
	var flags byte
	if h.last {
		flags |= 1
	}
	return append(dst, flags)
}

// decodeDataFrame splits a typeStreamData payload into its header and
// the raw data slice (a view into p, not a copy).
func decodeDataFrame(p []byte) (dataHeader, []byte, error) {
	var h dataHeader
	bad := func(what string) (dataHeader, []byte, error) {
		return dataHeader{}, nil, fmt.Errorf("%w: bad data frame %s", ErrProtocol, what)
	}
	id, k := binary.Uvarint(p)
	if k <= 0 {
		return bad("id")
	}
	p = p[k:]
	pos, k := binary.Uvarint(p)
	if k <= 0 || pos > 1<<30 {
		return bad("position")
	}
	p = p[k:]
	level, k := binary.Varint(p)
	if k <= 0 {
		return bad("level")
	}
	p = p[k:]
	offset, k := binary.Uvarint(p)
	if k <= 0 || offset > MaxFramePayload {
		return bad("offset")
	}
	p = p[k:]
	total, k := binary.Uvarint(p)
	if k <= 0 || total > MaxFramePayload {
		return bad("total")
	}
	p = p[k:]
	if len(p) < 1 {
		return bad("flags")
	}
	flags := p[0]
	data := p[1:]
	if len(data) > MaxStreamFrame {
		return bad("payload size")
	}
	if int64(offset)+int64(len(data)) > int64(total) {
		return bad("bounds")
	}
	h = dataHeader{id: id, pos: int(pos), level: int(level),
		offset: int64(offset), total: int64(total), last: flags&1 != 0}
	return h, data, nil
}

// streamEvent is what the client's reader routes to a Stream: a frame,
// io.EOF for END, or a terminal error.
type streamEvent struct {
	frame StreamFrame
	err   error
}

// Stream is the client side of one open context stream on a Client
// connection. Recv is safe for one consumer; Switch/Cancel/Close may be
// called concurrently with Recv.
type Stream struct {
	c      *Client
	id     uint64
	window int64
	inbox  chan streamEvent

	mu     sync.Mutex
	debt   int64 // consumed bytes not yet granted back
	closed bool
	done   bool
}

// Recv implements ChunkStream.
func (s *Stream) Recv(ctx context.Context) (StreamFrame, error) {
	if err := ctx.Err(); err != nil {
		// Deterministic cancellation: buffered frames must not race the
		// caller's abandoned context.
		return StreamFrame{}, err
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return StreamFrame{}, io.EOF
	}
	if s.closed {
		s.mu.Unlock()
		return StreamFrame{}, fmt.Errorf("transport: stream %d closed", s.id)
	}
	s.mu.Unlock()
	select {
	case ev := <-s.inbox:
		if ev.err != nil {
			s.mu.Lock()
			s.done = true
			s.mu.Unlock()
			s.c.dropStream(s.id)
			if errors.Is(ev.err, errStreamEnd) {
				return StreamFrame{}, io.EOF
			}
			return StreamFrame{}, ev.err
		}
		s.ack(int64(len(ev.frame.Data)))
		return ev.frame, nil
	case <-s.c.done:
		return StreamFrame{}, s.c.Err()
	case <-ctx.Done():
		return StreamFrame{}, ctx.Err()
	}
}

// ack accumulates consumed bytes and replenishes the sender's credit in
// window/4 quanta (batching keeps the credit chatter to ~4 frames per
// window instead of one per DATA frame).
func (s *Stream) ack(n int64) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.debt += n
	grant := int64(0)
	if s.debt >= s.window/4 {
		grant, s.debt = s.debt, 0
	}
	s.mu.Unlock()
	if grant > 0 {
		// Best-effort: a failed grant means the connection is dead and
		// the next Recv surfaces that.
		_ = s.c.send(typeStreamCredit, encodeCredit(s.id, grant))
	}
}

// Switch implements ChunkStream.
func (s *Stream) Switch(level int) error {
	return s.c.send(typeStreamSwitch, encodeSwitch(s.id, level))
}

// Cancel implements ChunkStream.
func (s *Stream) Cancel(pos, level int) error {
	return s.c.send(typeStreamCancel, encodeCancel(s.id, pos, level))
}

// Close implements ChunkStream: tells the server to stop pushing and
// releases the stream id. Safe to call twice.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed || s.done {
		already := s.closed
		s.closed = true
		s.mu.Unlock()
		if already {
			return nil
		}
		s.c.dropStream(s.id)
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.c.dropStream(s.id)
	return s.c.send(typeStreamClose, encodeStreamID(s.id))
}

// deliver routes one event into the stream without ever blocking the
// connection's reader; overflow reports a protocol violation (the sender
// overran its credit window).
func (s *Stream) deliver(ev streamEvent) error {
	select {
	case s.inbox <- ev:
		return nil
	default:
		return fmt.Errorf("%w: stream %d overran its credit window", ErrProtocol, s.id)
	}
}
