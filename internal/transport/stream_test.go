package transport

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/storage"
)

// streamFixture is a store holding one context whose chunk payloads have
// controllable sizes, plus the hash tables a stream open needs.
type streamFixture struct {
	store    storage.Store
	payloads map[int][][]byte // level → per-chunk payload
	chunks   []StreamChunk
}

// newStreamFixture seeds nChunks chunks; level 0 payloads are sizeL0
// bytes, level 1 payloads sizeL1, and the text pseudo-level a few bytes.
func newStreamFixture(t *testing.T, nChunks, sizeL0, sizeL1 int) *streamFixture {
	t.Helper()
	fx := &streamFixture{store: storage.NewMemStore(), payloads: map[int][][]byte{}}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	fx.chunks = make([]StreamChunk, nChunks)
	for c := 0; c < nChunks; c++ {
		fx.chunks[c] = StreamChunk{Index: c, Hashes: map[int]string{}}
	}
	for _, lv := range []int{0, 1, storage.TextLevel} {
		fx.payloads[lv] = make([][]byte, nChunks)
		for c := 0; c < nChunks; c++ {
			size := sizeL0
			switch lv {
			case 1:
				size = sizeL1
			case storage.TextLevel:
				size = 8
			}
			data := make([]byte, size)
			rng.Read(data)
			h := storage.HashChunk(data)
			if err := fx.store.PutChunk(ctx, h, data); err != nil {
				t.Fatal(err)
			}
			fx.payloads[lv][c] = data
			fx.chunks[c].Hashes[lv] = h
		}
	}
	return fx
}

// drain consumes the stream to EOF, reassembling per-position payloads
// and recording the level each position was finally delivered at. A
// restart (offset 0 at a new level) discards the position's prefix.
func drain(t *testing.T, s ChunkStream) (map[int][]byte, map[int]int, []StreamFrame) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got := map[int][]byte{}
	levels := map[int]int{}
	var frames []StreamFrame
	for {
		f, err := s.Recv(ctx)
		if errors.Is(err, io.EOF) {
			return got, levels, frames
		}
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		frames = append(frames, f)
		if lv, seen := levels[f.Pos]; !seen || lv != f.Level {
			if f.Offset != 0 && !seen {
				// resumed chunk: prefix intentionally absent
			} else if f.Offset == 0 {
				got[f.Pos] = nil // restart
			}
			levels[f.Pos] = f.Level
		}
		got[f.Pos] = append(got[f.Pos], f.Data...)
	}
}

func TestStreamPushBasic(t *testing.T) {
	fx := newStreamFixture(t, 3, 200_000, 50_000)
	client := pipeClient(t, fx.store)
	s, err := client.OpenChunkStream(context.Background(), StreamRequest{Chunks: fx.chunks, Level: 0})
	if err != nil {
		t.Fatal(err)
	}
	got, levels, frames := drain(t, s)
	for c := 0; c < 3; c++ {
		if !bytes.Equal(got[c], fx.payloads[0][c]) {
			t.Errorf("chunk %d payload mismatch (%d vs %d bytes)", c, len(got[c]), len(fx.payloads[0][c]))
		}
		if levels[c] != 0 {
			t.Errorf("chunk %d delivered at level %d", c, levels[c])
		}
	}
	// 200 KB chunks at the 64 KiB default frame bound: ≥4 frames each,
	// in order, with coherent offsets and a terminal Last.
	if len(frames) < 12 {
		t.Fatalf("got %d frames, want ≥12", len(frames))
	}
	var offset int64
	var prevArrived time.Time
	pos := 0
	for _, f := range frames {
		if f.Arrived.IsZero() || f.Arrived.Before(prevArrived) {
			t.Fatalf("frame arrival timestamps not monotonic: %v after %v", f.Arrived, prevArrived)
		}
		prevArrived = f.Arrived
		if f.Pos != pos {
			if f.Pos != pos+1 || offset != int64(len(fx.payloads[0][pos])) {
				t.Fatalf("chunk advanced at offset %d of %d", offset, len(fx.payloads[0][pos]))
			}
			pos, offset = f.Pos, 0
		}
		if f.Offset != offset || f.Total != int64(len(fx.payloads[0][pos])) {
			t.Fatalf("frame (pos %d offset %d total %d), want offset %d", f.Pos, f.Offset, f.Total, offset)
		}
		if len(f.Data) > DefaultFrameSize {
			t.Fatalf("frame of %d bytes exceeds the default bound", len(f.Data))
		}
		offset += int64(len(f.Data))
		if f.Last != (offset == f.Total) {
			t.Fatalf("Last flag wrong at offset %d/%d", offset, f.Total)
		}
	}

	// A subsequent Recv keeps returning io.EOF.
	if _, err := s.Recv(context.Background()); !errors.Is(err, io.EOF) {
		t.Errorf("Recv after EOF = %v", err)
	}
}

// TestStreamSwitchMidStream switches the level before later chunks
// start; the credit window guarantees the server cannot have started
// them yet.
func TestStreamSwitchMidStream(t *testing.T) {
	fx := newStreamFixture(t, 3, 64_000, 16_000)
	client := pipeClient(t, fx.store)
	s, err := client.OpenChunkStream(context.Background(), StreamRequest{
		Chunks: fx.chunks, Level: 0, FrameSize: 4 << 10, // window clamps to 16 KiB
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// First frame of chunk 0: with ≥2 windows of chunk 0 still unsent,
	// the server cannot be past it.
	f, err := s.Recv(ctx)
	if err != nil || f.Pos != 0 || f.Level != 0 {
		t.Fatalf("first frame = %+v, %v", f, err)
	}
	if err := s.Switch(1); err != nil {
		t.Fatal(err)
	}
	got, levels, _ := drain(t, s)
	got[0] = append(append([]byte{}, f.Data...), got[0]...)
	if !bytes.Equal(got[0], fx.payloads[0][0]) || levels[0] != 0 {
		t.Errorf("chunk 0 should finish at level 0 (got level %d, %d bytes)", levels[0], len(got[0]))
	}
	for c := 1; c < 3; c++ {
		if levels[c] != 1 {
			t.Errorf("chunk %d delivered at level %d after switch", c, levels[c])
		}
		if !bytes.Equal(got[c], fx.payloads[1][c]) {
			t.Errorf("chunk %d payload mismatch after switch", c)
		}
	}
}

// TestStreamCancelInFlight abandons chunk 0 mid-transfer and restarts it
// at level 1; later chunks stay at the stream level.
func TestStreamCancelInFlight(t *testing.T) {
	fx := newStreamFixture(t, 2, 64_000, 12_000)
	client := pipeClient(t, fx.store)
	s, err := client.OpenChunkStream(context.Background(), StreamRequest{
		Chunks: fx.chunks, Level: 0, FrameSize: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f, err := s.Recv(ctx)
	if err != nil || f.Pos != 0 || f.Level != 0 {
		t.Fatalf("first frame = %+v, %v", f, err)
	}
	if err := s.Cancel(0, 1); err != nil {
		t.Fatal(err)
	}
	got, levels, _ := drain(t, s)
	if levels[0] != 1 || !bytes.Equal(got[0], fx.payloads[1][0]) {
		t.Errorf("cancelled chunk 0: level %d, match %v", levels[0], bytes.Equal(got[0], fx.payloads[1][0]))
	}
	if levels[1] != 0 || !bytes.Equal(got[1], fx.payloads[0][1]) {
		t.Errorf("chunk 1 should stay at level 0 (got level %d)", levels[1])
	}
}

// TestStreamCancelToText restarts the in-flight chunk as the text
// pseudo-level — the "resend as text and recompute" fallback.
func TestStreamCancelToText(t *testing.T) {
	fx := newStreamFixture(t, 1, 64_000, 12_000)
	client := pipeClient(t, fx.store)
	s, err := client.OpenChunkStream(context.Background(), StreamRequest{
		Chunks: fx.chunks, Level: 0, FrameSize: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(0, storage.TextLevel); err != nil {
		t.Fatal(err)
	}
	got, levels, _ := drain(t, s)
	if levels[0] != storage.TextLevel || !bytes.Equal(got[0], fx.payloads[storage.TextLevel][0]) {
		t.Errorf("text restart: level %d, %d bytes", levels[0], len(got[0]))
	}
}

// TestStreamResumeOffset opens a stream whose first chunk resumes
// mid-payload — the replica-failover path.
func TestStreamResumeOffset(t *testing.T) {
	fx := newStreamFixture(t, 2, 100_000, 20_000)
	client := pipeClient(t, fx.store)
	chunks := append([]StreamChunk{}, fx.chunks...)
	const resume = 37_000
	chunks[0].Offset = resume
	s, err := client.OpenChunkStream(context.Background(), StreamRequest{Chunks: chunks, Level: 0})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f, err := s.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f.Pos != 0 || f.Offset != resume || f.Total != 100_000 {
		t.Fatalf("resumed first frame = pos %d offset %d total %d", f.Pos, f.Offset, f.Total)
	}
	got, _, _ := drain(t, s)
	tail := append(append([]byte{}, f.Data...), got[0]...)
	if !bytes.Equal(tail, fx.payloads[0][0][resume:]) {
		t.Errorf("resumed tail mismatch: %d bytes, want %d", len(tail), 100_000-resume)
	}
	if !bytes.Equal(got[1], fx.payloads[0][1]) {
		t.Errorf("chunk 1 mismatch after resume")
	}
}

// TestStreamInterleavesWithRoundTrips runs control-plane requests while
// a stream is pushing on the same connection.
func TestStreamInterleavesWithRoundTrips(t *testing.T) {
	fx := newStreamFixture(t, 4, 150_000, 30_000)
	store := seededStore(t) // adds the doc-1 manifest context
	// Merge the fixture chunks into the seeded store.
	ctx := context.Background()
	for lv, payloads := range fx.payloads {
		for c, data := range payloads {
			if err := store.PutChunk(ctx, fx.chunks[c].Hashes[lv], data); err != nil {
				t.Fatal(err)
			}
		}
	}
	client := pipeClient(t, store)
	s, err := client.OpenChunkStream(ctx, StreamRequest{Chunks: fx.chunks, Level: 0})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if _, err := client.GetManifest(ctx, "doc-1"); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	got, _, _ := drain(t, s)
	if err := <-done; err != nil {
		t.Fatalf("round trips during stream: %v", err)
	}
	for c := 0; c < 4; c++ {
		if !bytes.Equal(got[c], fx.payloads[0][c]) {
			t.Errorf("chunk %d corrupted by interleaved round trips", c)
		}
	}
}

// TestStreamBackpressure: a receiver that stops consuming stalls the
// push within one credit window instead of buffering the whole context.
func TestStreamBackpressure(t *testing.T) {
	fx := newStreamFixture(t, 1, 2_000_000, 100_000)
	client := pipeClient(t, fx.store)
	s, err := client.OpenChunkStream(context.Background(), StreamRequest{
		Chunks: fx.chunks, Level: 0, FrameSize: 16 << 10, Window: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Do not Recv: the server may push at most the initial window, which
	// bounds how many frames can pile up in the stream's inbox.
	time.Sleep(200 * time.Millisecond)
	inflight := len(s.(*Stream).inbox)
	if max := (64<<10)/(16<<10) + 2; inflight > max {
		t.Errorf("%d frames buffered while unconsumed, want ≤ %d (credit window)", inflight, max)
	}
	got, _, _ := drain(t, s)
	if !bytes.Equal(got[0], fx.payloads[0][0]) {
		t.Errorf("payload corrupted after stall")
	}
}

type countingStore struct {
	storage.Store
	bytesServed atomic.Int64
}

func (c *countingStore) GetChunk(ctx context.Context, hash string) ([]byte, error) {
	data, err := c.Store.GetChunk(ctx, hash)
	c.bytesServed.Add(int64(len(data)))
	return data, err
}

// TestStreamErrors: missing payloads and unknown levels surface as
// stream errors without disturbing the connection.
func TestStreamErrors(t *testing.T) {
	fx := newStreamFixture(t, 1, 10_000, 5_000)
	client := pipeClient(t, fx.store)
	ctx := context.Background()

	// Unknown level.
	s, err := client.OpenChunkStream(ctx, StreamRequest{Chunks: fx.chunks, Level: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(ctx); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("unknown level Recv = %v, want error", err)
	}

	// Missing payload hash.
	bogus := []StreamChunk{{Index: 0, Hashes: map[int]string{0: storage.HashChunk([]byte("gone"))}}}
	s2, err := client.OpenChunkStream(ctx, StreamRequest{Chunks: bogus, Level: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Recv(ctx); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("missing payload Recv = %v, want ErrNotFound", err)
	}

	// The connection survives: a healthy stream still works.
	s3, err := client.OpenChunkStream(ctx, StreamRequest{Chunks: fx.chunks, Level: 0})
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := drain(t, s3)
	if !bytes.Equal(got[0], fx.payloads[0][0]) {
		t.Errorf("healthy stream after errors corrupted")
	}

	// Empty requests are rejected locally.
	if _, err := client.OpenChunkStream(ctx, StreamRequest{}); err == nil {
		t.Error("empty stream request accepted")
	}
}

// TestStreamCloseEarly abandons a stream mid-push; the connection stays
// usable and the server's pusher exits (observed via Server.Close not
// hanging on the connection teardown).
func TestStreamCloseEarly(t *testing.T) {
	fx := newStreamFixture(t, 2, 1_000_000, 100_000)
	client := pipeClient(t, fx.store)
	ctx := context.Background()
	s, err := client.OpenChunkStream(ctx, StreamRequest{Chunks: fx.chunks, Level: 0, Window: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	// Control plane still works after abandoning the stream.
	if _, err := client.OpenChunkStream(ctx, StreamRequest{Chunks: fx.chunks[1:], Level: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamEmptyPayload delivers a zero-byte chunk as one empty Last
// frame.
func TestStreamEmptyPayload(t *testing.T) {
	store := storage.NewMemStore()
	ctx := context.Background()
	empty := []byte{}
	h := storage.HashChunk(empty)
	if err := store.PutChunk(ctx, h, empty); err != nil {
		t.Fatal(err)
	}
	client := pipeClient(t, store)
	s, err := client.OpenChunkStream(ctx, StreamRequest{
		Chunks: []StreamChunk{{Index: 0, Hashes: map[int]string{0: h}}}, Level: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f.Total != 0 || !f.Last || len(f.Data) != 0 {
		t.Errorf("empty chunk frame = %+v", f)
	}
	if _, err := s.Recv(ctx); !errors.Is(err, io.EOF) {
		t.Errorf("after empty chunk: %v", err)
	}
}

// TestStreamOverTCPWithTrace streams through a real socket shaped by a
// bandwidth trace — the live replay path the harness and CLIs use.
func TestStreamOverTCPWithTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	fx := newStreamFixture(t, 2, 400_000, 30_000)
	trace, err := netsim.ParseTrace("40Mbps:100ms,8Mbps")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fx.store, WithEgressTrace(trace))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	s, err := client.OpenChunkStream(context.Background(), StreamRequest{Chunks: fx.chunks, Level: 0, FrameSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, _, frames := drain(t, s)
	elapsed := time.Since(start)
	for c := 0; c < 2; c++ {
		if !bytes.Equal(got[c], fx.payloads[0][c]) {
			t.Fatalf("chunk %d mismatch over shaped TCP", c)
		}
	}
	// 800 KB total: the 40 Mbps phase carries ~500 KB in its 100 ms; the
	// remaining ~300 KB crawl at 8 Mbps ≈ 300 ms ⇒ ≳ 250 ms overall.
	// Unshaped loopback would finish in single-digit ms.
	if elapsed < 200*time.Millisecond {
		t.Errorf("traced stream finished in %v — shaping not applied", elapsed)
	}
	if len(frames) < 50 {
		t.Errorf("only %d frames for 800 KB at 8 KiB bound", len(frames))
	}
}

func TestStreamRequestNormalize(t *testing.T) {
	r := StreamRequest{Chunks: []StreamChunk{{Hashes: map[int]string{0: "h"}}}}
	if err := r.normalize(); err != nil {
		t.Fatal(err)
	}
	if r.FrameSize != DefaultFrameSize || r.Window != DefaultStreamWindow {
		t.Errorf("defaults = frame %d window %d", r.FrameSize, r.Window)
	}
	r2 := StreamRequest{Chunks: []StreamChunk{{Hashes: map[int]string{0: "h"}}}, FrameSize: 1 << 30, Window: 1}
	if err := r2.normalize(); err != nil {
		t.Fatal(err)
	}
	if r2.FrameSize != MaxStreamFrame || r2.Window != 4*int64(MaxStreamFrame) {
		t.Errorf("clamps = frame %d window %d", r2.FrameSize, r2.Window)
	}
	bad := StreamRequest{Chunks: []StreamChunk{{}}}
	if err := bad.normalize(); err == nil {
		t.Error("chunk without hashes accepted")
	}
	neg := StreamRequest{Chunks: []StreamChunk{{Offset: -1, Hashes: map[int]string{0: "h"}}}}
	if err := neg.normalize(); err == nil {
		t.Error("negative offset accepted")
	}
}

// TestShaperMidWriteTighten: SetRate during a blocked Write takes effect
// on the next refill — the property trace replay depends on.
func TestShaperMidWriteTighten(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()

	shaped := NewShaper(cConn, 80e6) // 10 MB/s
	var received atomic.Int64
	go func() {
		buf := make([]byte, 32<<10)
		for {
			n, err := sConn.Read(buf)
			received.Add(int64(n))
			if err != nil {
				return
			}
		}
	}()
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		shaped.Write(make([]byte, 8<<20)) // 8 MB: ~800ms at the fast rate
	}()

	time.Sleep(100 * time.Millisecond)
	shaped.SetRate(8e5)                // tighten to 100 KB/s mid-write
	time.Sleep(100 * time.Millisecond) // let the change land
	before := received.Load()
	time.Sleep(300 * time.Millisecond)
	delta := received.Load() - before
	// 300 ms at 100 KB/s ≈ 30 KB (+ up to one 50 ms burst bucket); at the
	// old rate it would be ~3 MB.
	if delta > 500_000 {
		t.Errorf("egress after mid-write tighten: %d bytes in 300ms, want ≈30KB", delta)
	}
	if delta == 0 {
		t.Error("egress stalled entirely after SetRate")
	}
	cConn.Close() // unblock the writer
	<-writeDone
}

// TestShaperTraceSteps: a trace's segments drive the rate without any
// SetRate calls.
func TestShaperTraceSteps(t *testing.T) {
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	trace, err := netsim.ParseTrace("40Mbps:60ms,4Mbps")
	if err != nil {
		t.Fatal(err)
	}
	s := NewShaper(cConn, 0)
	s.SetTrace(trace)
	if got := s.Rate(); got != 40e6 {
		t.Fatalf("initial traced rate = %v", got)
	}
	time.Sleep(80 * time.Millisecond)
	s.take(1) // refill samples the trace
	if got := s.Rate(); got != 4e6 {
		t.Errorf("post-step traced rate = %v, want 4e6", got)
	}
	// SetRate clears the trace.
	s.SetRate(1e6)
	time.Sleep(20 * time.Millisecond)
	s.take(1)
	if got := s.Rate(); got != 1e6 {
		t.Errorf("SetRate did not clear the trace: rate = %v", got)
	}
}

// TestIngressShaper paces reads, not writes.
func TestIngressShaper(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	shaped := NewIngressShaper(cConn, 8e6) // 1 MB/s
	go func() {
		sConn.Write(make([]byte, 300_000))
	}()
	start := time.Now()
	var total int
	buf := make([]byte, 32<<10)
	for total < 300_000 {
		n, err := shaped.Read(buf)
		total += n
		if err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond || elapsed > time.Second {
		t.Errorf("0.3 MB ingress at 1 MB/s took %v, want ≈300ms", elapsed)
	}
}

func TestStreamControlCodecs(t *testing.T) {
	if id, n, err := decodeCredit(encodeCredit(7, 12345)); err != nil || id != 7 || n != 12345 {
		t.Errorf("credit round trip = %d,%d,%v", id, n, err)
	}
	if id, lv, err := decodeSwitch(encodeSwitch(9, storage.TextLevel)); err != nil || id != 9 || lv != storage.TextLevel {
		t.Errorf("switch round trip = %d,%d,%v", id, lv, err)
	}
	if id, pos, lv, err := decodeCancel(encodeCancel(3, 14, -1)); err != nil || id != 3 || pos != 14 || lv != -1 {
		t.Errorf("cancel round trip = %d,%d,%d,%v", id, pos, lv, err)
	}
	hdr := dataHeader{id: 5, pos: 2, level: -1, offset: 100, total: 999, last: true}
	payload := appendDataHeader(nil, hdr)
	payload = append(payload, []byte("abc")...)
	got, data, err := decodeDataFrame(payload)
	if err != nil || got != (dataHeader{id: 5, pos: 2, level: -1, offset: 100, total: 999, last: true}) || string(data) != "abc" {
		t.Errorf("data frame round trip = %+v, %q, %v", got, data, err)
	}
	// Frames whose bounds lie are rejected.
	bad := appendDataHeader(nil, dataHeader{id: 1, total: 2})
	bad = append(bad, []byte("too long")...)
	if _, _, err := decodeDataFrame(bad); err == nil {
		t.Error("out-of-bounds data frame accepted")
	}
	for _, p := range [][]byte{nil, {0x80}, {1}, {1, 0x80}} {
		if _, _, err := decodeDataFrame(p); err == nil {
			t.Errorf("truncated data frame %v accepted", p)
		}
		if _, _, err := decodeCredit(p); err == nil && p == nil {
			t.Errorf("truncated credit %v accepted", p)
		}
	}
}

// TestReadFrameBoundedAllocation: a length prefix claiming a huge frame
// with no bytes behind it must fail without allocating the claimed size.
func TestReadFrameBoundedAllocation(t *testing.T) {
	var hdr bytes.Buffer
	hdr.Write([]byte{'C', 'G', typeRespChunk, 0x3F, 0xFF, 0xFF, 0xFF}) // ~1 GiB claim
	hdr.Write(make([]byte, 1000))                                      // only 1000 real bytes
	before := allocBytes()
	_, _, err := readFrame(&hdr)
	after := allocBytes()
	if err == nil {
		t.Fatal("truncated 1 GiB claim accepted")
	}
	if grew := after - before; grew > 64<<20 {
		t.Errorf("readFrame allocated %d bytes for a lying prefix", grew)
	}
	// Oversized claims are rejected outright.
	var over bytes.Buffer
	over.Write([]byte{'C', 'G', typeRespChunk, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := readFrame(&over); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized claim error = %v", err)
	}
}

func allocBytes() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.TotalAlloc
}

// TestRoundTripDeadlineKeepsConnection: a round trip whose deadline
// expires before any byte reaches the wire must not tear down the
// shared connection — the frame is withdrawn and later callers proceed.
func TestRoundTripDeadlineKeepsConnection(t *testing.T) {
	store := seededStore(t)
	srv := NewServer(store)
	cConn, sConn := net.Pipe()
	client := NewClient(cConn)
	t.Cleanup(func() { client.Close(); srv.Close() })

	// No reader on the server side yet: the write blocks, the deadline
	// expires, zero bytes move.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_, err := client.GetManifest(ctx, "doc-1")
	cancel()
	if err == nil {
		t.Fatal("deadline-bound request against an unread pipe succeeded")
	}
	if cerr := client.Err(); cerr != nil {
		t.Fatalf("zero-byte deadline failure killed the connection: %v", cerr)
	}

	// Attach the server; the same connection must still work.
	go srv.HandleConn(sConn)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	man, err := client.GetManifest(ctx2, "doc-1")
	if err != nil {
		t.Fatalf("connection unusable after a withdrawn round trip: %v", err)
	}
	if man.Meta.ContextID != "doc-1" {
		t.Errorf("manifest = %+v", man.Meta)
	}
}
