package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

// seededStore builds a MemStore holding one two-chunk context: payloads
// at two levels plus text, addressed by hash through a manifest.
func seededStore(t *testing.T) storage.Store {
	t.Helper()
	s := storage.NewMemStore()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	man := storage.Manifest{
		Meta: storage.ContextMeta{
			ContextID:   "doc-1",
			Model:       "Mistral-7B",
			TokenCount:  300,
			ChunkTokens: []int{150, 150},
			Levels:      2,
			SizesBytes:  [][]int64{{1000, 1000}, {600, 600}},
			TextBytes:   []int64{6, 6},
		},
		Hashes: map[int][]string{},
	}
	for _, lv := range []int{0, 1, storage.TextLevel} {
		row := make([]string, 2)
		for c := 0; c < 2; c++ {
			var data []byte
			if lv == storage.TextLevel {
				data = []byte(fmt.Sprintf("text-%d", c))
			} else {
				data = make([]byte, 1000-400*lv)
				rng.Read(data)
			}
			h := storage.HashChunk(data)
			if err := s.PutChunk(ctx, h, data); err != nil {
				t.Fatal(err)
			}
			row[c] = h
		}
		man.Hashes[lv] = row
	}
	if err := s.PutManifest(ctx, man); err != nil {
		t.Fatal(err)
	}
	return s
}

// pipeClient starts a server over net.Pipe and returns a connected client.
func pipeClient(t *testing.T, store storage.Store, opts ...ServerOption) *Client {
	t.Helper()
	srv := NewServer(store, opts...)
	cConn, sConn := net.Pipe()
	go srv.HandleConn(sConn)
	t.Cleanup(func() { srv.Close() })
	client := NewClient(cConn)
	t.Cleanup(func() { client.Close() })
	return client
}

func TestGetManifestOverPipe(t *testing.T) {
	client := pipeClient(t, seededStore(t))
	man, err := client.GetManifest(context.Background(), "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	if man.Meta.ContextID != "doc-1" || man.Meta.NumChunks() != 2 || man.Meta.Levels != 2 {
		t.Errorf("manifest meta = %+v", man.Meta)
	}
	if len(man.Hashes[0]) != 2 || len(man.Hashes[storage.TextLevel]) != 2 {
		t.Errorf("manifest hashes = %+v", man.Hashes)
	}
	// GetMeta convenience wrapper.
	meta, err := client.GetMeta(context.Background(), "doc-1")
	if err != nil || meta.TokenCount != 300 {
		t.Errorf("GetMeta = %+v, %v", meta, err)
	}
}

func TestGetChunkDataOverPipe(t *testing.T) {
	store := seededStore(t)
	client := pipeClient(t, store)
	ctx := context.Background()

	man, err := store.GetManifest(ctx, "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	hash, err := man.ChunkHash(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := store.GetChunk(ctx, hash)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.GetChunkData(ctx, hash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("chunk payload mismatch")
	}

	// Text pseudo-level, by its manifest hash.
	textHash, err := man.ChunkHash(storage.TextLevel, 0)
	if err != nil {
		t.Fatal(err)
	}
	text, err := client.GetChunkData(ctx, textHash)
	if err != nil {
		t.Fatal(err)
	}
	if string(text) != "text-0" {
		t.Errorf("text chunk = %q", text)
	}
}

func TestNotFoundPropagates(t *testing.T) {
	client := pipeClient(t, seededStore(t))
	ctx := context.Background()
	if _, err := client.GetManifest(ctx, "missing"); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("GetManifest of missing context = %v, want ErrNotFound", err)
	}
	_, err := client.GetChunkData(ctx, storage.HashChunk([]byte("missing payload")))
	if !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("missing chunk error = %v, want ErrNotFound", err)
	}
}

func TestDeleteSweepUsageOverPipe(t *testing.T) {
	store := seededStore(t)
	client := pipeClient(t, store)
	ctx := context.Background()

	before, err := client.Usage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before.Manifests != 1 || before.Chunks != 6 {
		t.Fatalf("usage = %+v", before)
	}
	if err := client.DeleteContext(ctx, "doc-1"); err != nil {
		t.Fatal(err)
	}
	if err := client.DeleteContext(ctx, "doc-1"); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("double delete = %v, want ErrNotFound", err)
	}
	// A graceful sweep keeps the young payloads; an immediate one reclaims
	// all six now-unreferenced payloads.
	res, err := client.Sweep(ctx, time.Hour)
	if err != nil || res.RemovedChunks != 0 {
		t.Fatalf("grace sweep = %+v, %v", res, err)
	}
	res, err = client.Sweep(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedChunks != 6 || res.ReclaimedBytes != before.ChunkBytes {
		t.Errorf("sweep = %+v, want 6 chunks / %d bytes", res, before.ChunkBytes)
	}
	after, err := client.Usage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Chunks != 0 || after.ChunkBytes != 0 || after.Manifests != 0 {
		t.Errorf("usage after sweep = %+v", after)
	}
}

func TestSequentialAndConcurrentRequests(t *testing.T) {
	store := seededStore(t)
	client := pipeClient(t, store)
	ctx := context.Background()
	man, err := store.GetManifest(ctx, "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hash, err := man.ChunkHash(i%2, i%2)
			if err != nil {
				errs <- err
				return
			}
			if _, err := client.GetChunkData(ctx, hash); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestOverRealTCP(t *testing.T) {
	store := seededStore(t)
	srv := NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() { srv.Close(); <-done })

	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	man, err := client.GetManifest(ctx, "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < man.Meta.NumChunks(); c++ {
		hash, err := man.ChunkHash(1, c)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.GetChunkData(ctx, hash); err != nil {
			t.Fatalf("chunk %d: %v", c, err)
		}
	}
	if srv.Addr() == nil {
		t.Error("server address nil while serving")
	}
}

func TestContextDeadline(t *testing.T) {
	// A server that never responds: the client must honor the deadline.
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	client := NewClient(cConn)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.GetManifest(ctx, "doc-1")
	if err == nil {
		t.Fatal("GetManifest succeeded against a dead server")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("deadline not honored: took %v", elapsed)
	}
}

func TestCancelledContext(t *testing.T) {
	client := pipeClient(t, seededStore(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.GetManifest(ctx, "doc-1"); err == nil {
		t.Error("request with cancelled context succeeded")
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	store := seededStore(t)
	srv := NewServer(store)
	cConn, sConn := net.Pipe()
	done := make(chan struct{})
	go func() { defer close(done); srv.HandleConn(sConn) }()
	defer srv.Close()

	// Write garbage; the server must drop the connection, not panic.
	cConn.SetDeadline(time.Now().Add(time.Second))
	cConn.Write([]byte("XXXXXXXXXXXXXXXXXX"))
	buf := make([]byte, 16)
	cConn.Read(buf) // either EOF or nothing
	cConn.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Error("server did not drop garbage connection")
	}
}

func TestFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, 8)
	if err := writeFrame(&buf, typeReqManifest, big); err != nil {
		t.Fatal(err)
	}
	// Corrupt the length field to exceed the limit.
	data := buf.Bytes()
	data[3], data[4], data[5], data[6] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := readFrame(bytes.NewReader(data)); err == nil {
		t.Error("readFrame accepted oversized frame")
	}
}

func TestSweepReqCodec(t *testing.T) {
	for _, minAge := range []time.Duration{0, time.Second, 5 * time.Minute, 24 * time.Hour} {
		payload := encodeSweepReq(minAge)
		got, err := decodeSweepReq(payload)
		if err != nil || got != minAge {
			t.Errorf("round trip %v -> %v, %v", minAge, got, err)
		}
	}
	if _, err := decodeSweepReq(nil); err == nil {
		t.Error("decodeSweepReq accepted empty payload")
	}
	if _, err := decodeSweepReq(encodeSweepReq(-1)); err == nil {
		t.Error("decodeSweepReq accepted negative min-age")
	}
}

func TestShaperRate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()

	const bps = 8e6 // 1 MB/s
	shaped := NewShaper(cConn, bps)
	if shaped.Rate() != bps {
		t.Fatalf("Rate = %v", shaped.Rate())
	}

	const payload = 300_000 // 0.3 MB ⇒ ≈300 ms at 1 MB/s
	go func() {
		buf := make([]byte, 32<<10)
		var total int
		for total < payload {
			n, err := sConn.Read(buf)
			total += n
			if err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := shaped.Write(make([]byte, payload)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 200*time.Millisecond || elapsed > 800*time.Millisecond {
		t.Errorf("0.3 MB at 1 MB/s took %v, want ≈300ms", elapsed)
	}
}

func TestShaperUnlimited(t *testing.T) {
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	shaped := NewShaper(cConn, 0)
	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, err := sConn.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := shaped.Write(make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("unlimited shaper throttled: %v", elapsed)
	}
}

func TestShaperSetRate(t *testing.T) {
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	shaped := NewShaper(cConn, 1e6)
	shaped.SetRate(5e8)
	if shaped.Rate() != 5e8 {
		t.Errorf("Rate after SetRate = %v", shaped.Rate())
	}
	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, err := sConn.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := shaped.Write(make([]byte, 500_000)); err != nil { // 8ms at 62.5MB/s
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("SetRate did not take effect: %v", elapsed)
	}
}

func TestServeAfterClose(t *testing.T) {
	srv := NewServer(storage.NewMemStore())
	srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); !errors.Is(err, net.ErrClosed) {
		t.Errorf("Serve after Close = %v", err)
	}
}

func TestGetBank(t *testing.T) {
	bank := []byte{1, 2, 3, 4, 5, 6}
	client := pipeClient(t, seededStore(t), WithBank(bank))
	got, err := client.GetBank(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bank) {
		t.Errorf("GetBank = %v", got)
	}

	// A server without a bank reports an error.
	noBank := pipeClient(t, seededStore(t))
	if _, err := noBank.GetBank(context.Background()); err == nil {
		t.Error("GetBank succeeded on a bank-less server")
	}
}

// TestServerManyConnections exercises the server with many concurrent
// client connections issuing interleaved manifest and chunk requests —
// the cluster Pool's access pattern, where several fetch goroutines hold
// one connection each to the same node.
func TestServerManyConnections(t *testing.T) {
	store := seededStore(t)
	srv := NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	ctx := context.Background()
	man, err := store.GetManifest(ctx, "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	hash, err := man.ChunkHash(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := store.GetChunk(ctx, hash)
	if err != nil {
		t.Fatal(err)
	}

	const conns = 8
	const reqs = 25
	var wg sync.WaitGroup
	errCh := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(ln.Addr().String())
			if err != nil {
				errCh <- err
				return
			}
			defer client.Close()
			for r := 0; r < reqs; r++ {
				if r%5 == 0 {
					man, err := client.GetManifest(ctx, "doc-1")
					if err != nil {
						errCh <- err
						return
					}
					if man.Meta.TokenCount != 300 {
						errCh <- errors.New("corrupt manifest under concurrency")
						return
					}
					continue
				}
				got, err := client.GetChunkData(ctx, hash)
				if err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(got, want) {
					errCh <- errors.New("corrupt chunk payload under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// Close must tear down every connection. Issue one successful request
	// first so the server has definitely accepted and registered this
	// connection before Close runs.
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.GetManifest(ctx, "doc-1"); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	reqCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, err := client.GetManifest(reqCtx, "doc-1"); err == nil {
		t.Error("request succeeded after server Close")
	}
}
