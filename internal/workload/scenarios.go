package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Params configures the scenario builders. Every field has a
// builder-specific default, so the zero value (plus a Seed) produces a
// small, fast scenario; the chaos harness (X10) uses exactly those.
type Params struct {
	// Tenants are the submitting tenants; arrivals are spread across them
	// uniformly (seeded). Default: ["tenant-a", "tenant-b"].
	Tenants []string
	// Contexts is how many contexts the scenario publishes.
	Contexts int
	// ContextTokens is each context's length.
	ContextTokens int
	// PrefixTokens is the shared corpus prefix length (RAG burst).
	PrefixTokens int
	// Requests is the number of session arrivals.
	Requests int
	// Window is the schedule length arrivals are spread over.
	Window time.Duration
	// SuffixTokens, SLO and Deadline are copied onto every arrival.
	SuffixTokens int
	SLO          time.Duration
	Deadline     time.Duration
	// Turns and ThinkTime shape multi-turn sessions (agentic scenario).
	Turns     int
	ThinkTime time.Duration
	// AppendTokens is the per-turn append size (agentic scenario).
	AppendTokens int
	// Seed makes the whole trace reproducible.
	Seed int64
}

func (p Params) withDefaults(d Params) Params {
	if len(p.Tenants) == 0 {
		p.Tenants = d.Tenants
		if len(p.Tenants) == 0 {
			p.Tenants = []string{"tenant-a", "tenant-b"}
		}
	}
	if p.Contexts == 0 {
		p.Contexts = d.Contexts
	}
	if p.ContextTokens == 0 {
		p.ContextTokens = d.ContextTokens
	}
	if p.PrefixTokens == 0 {
		p.PrefixTokens = d.PrefixTokens
	}
	if p.Requests == 0 {
		p.Requests = d.Requests
	}
	if p.Window == 0 {
		p.Window = d.Window
	}
	if p.SuffixTokens == 0 {
		p.SuffixTokens = d.SuffixTokens
	}
	if p.SLO == 0 {
		p.SLO = d.SLO
	}
	if p.Deadline == 0 {
		p.Deadline = d.Deadline
	}
	if p.Turns == 0 {
		p.Turns = d.Turns
	}
	if p.ThinkTime == 0 {
		p.ThinkTime = d.ThinkTime
	}
	if p.AppendTokens == 0 {
		p.AppendTokens = d.AppendTokens
	}
	return p
}

// RAGBurst models retrieval-augmented serving: many contexts share a hot
// corpus prefix (the retrieved document set / system prompt), and
// requests arrive in tight bursts as a popular query fans out. The
// shared prefix is what the content-addressed store dedups and what the
// RAM tier keeps hot; the bursts are what stresses admission and
// prefetch.
func RAGBurst(p Params) *Trace {
	p = p.withDefaults(Params{
		Contexts: 6, ContextTokens: 192, PrefixTokens: 128,
		Requests: 18, Window: 900 * time.Millisecond,
		SLO: 300 * time.Millisecond,
	})
	rng := rand.New(rand.NewSource(p.Seed))
	t := &Trace{
		TraceName: "rag-burst",
		Description: fmt.Sprintf("%d contexts sharing a %d-token corpus prefix; %d requests in bursts",
			p.Contexts, p.PrefixTokens, p.Requests),
		Seed: p.Seed,
	}
	corpus := fmt.Sprintf("rag-corpus-%d", p.Seed)
	for i := 0; i < p.Contexts; i++ {
		t.ContextList = append(t.ContextList, ContextSpec{
			ID: fmt.Sprintf("rag-%02d", i), Tokens: p.ContextTokens,
			PrefixID: corpus, PrefixTokens: p.PrefixTokens,
			Seed: rng.Int63(),
		})
	}
	// Three bursts: each takes a third of the requests inside a tenth of
	// the window, separated by quiet gaps.
	bursts := 3
	per := p.Requests / bursts
	for b := 0; b < bursts; b++ {
		burstStart := time.Duration(float64(p.Window) * float64(b) / float64(bursts))
		n := per
		if b == bursts-1 {
			n = p.Requests - per*(bursts-1)
		}
		for i := 0; i < n; i++ {
			at := burstStart + time.Duration(rng.Int63n(int64(p.Window)/int64(10*bursts)+1))
			t.ArrivalList = append(t.ArrivalList, Arrival{
				At:     Duration(at),
				Tenant: p.Tenants[rng.Intn(len(p.Tenants))],
				ContextID: fmt.Sprintf("rag-%02d",
					rng.Intn(p.Contexts)),
				SuffixTokens: p.SuffixTokens,
				SLO:          Duration(p.SLO),
				Deadline:     Duration(p.Deadline),
				Seed:         rng.Int63(),
			})
		}
	}
	sortArrivals(t.ArrivalList)
	return t
}

// Agentic models tool-using agents: each arrival is a multi-turn session
// that appends tool output to its own context every turn through
// gateway.Session, so warm turns fetch only the tail the previous append
// produced. It exercises append-publish, warm fetches and the
// store's multi-turn path under concurrent sessions.
func Agentic(p Params) *Trace {
	p = p.withDefaults(Params{
		Requests: 6, Window: 600 * time.Millisecond,
		Turns: 3, ThinkTime: 30 * time.Millisecond,
		ContextTokens: 128, AppendTokens: 96,
		SLO: 400 * time.Millisecond,
	})
	rng := rand.New(rand.NewSource(p.Seed))
	t := &Trace{
		TraceName: "agentic",
		Description: fmt.Sprintf("%d tool-using sessions of %d turns, each appending %d tokens per turn",
			p.Requests, p.Turns, p.AppendTokens),
		Seed: p.Seed,
	}
	for i := 0; i < p.Requests; i++ {
		at := time.Duration(float64(p.Window) * float64(i) / float64(p.Requests))
		t.ArrivalList = append(t.ArrivalList, Arrival{
			At:           Duration(at),
			Tenant:       p.Tenants[rng.Intn(len(p.Tenants))],
			ContextID:    fmt.Sprintf("agent-%02d", i),
			SuffixTokens: p.SuffixTokens,
			SLO:          Duration(p.SLO),
			Deadline:     Duration(p.Deadline),
			Turns:        p.Turns,
			ThinkTime:    Duration(p.ThinkTime),
			AppendTokens: p.AppendTokens,
			Seed:         rng.Int63(),
		})
	}
	sortArrivals(t.ArrivalList)
	return t
}

// LongDocQA models long-document question answering: a few large
// contexts (the documents), each queried repeatedly with substantial
// prompt suffixes (the questions). Per-request bytes dominate, so this
// is the scenario most sensitive to bandwidth faults.
func LongDocQA(p Params) *Trace {
	p = p.withDefaults(Params{
		Contexts: 2, ContextTokens: 448,
		Requests: 10, Window: 800 * time.Millisecond,
		SuffixTokens: 64, SLO: 400 * time.Millisecond,
	})
	rng := rand.New(rand.NewSource(p.Seed))
	t := &Trace{
		TraceName: "longdoc-qa",
		Description: fmt.Sprintf("%d documents of %d tokens queried %d times",
			p.Contexts, p.ContextTokens, p.Requests),
		Seed: p.Seed,
	}
	for i := 0; i < p.Contexts; i++ {
		t.ContextList = append(t.ContextList, ContextSpec{
			ID: fmt.Sprintf("doc-%02d", i), Tokens: p.ContextTokens, Seed: rng.Int63(),
		})
	}
	for i := 0; i < p.Requests; i++ {
		// Uniform arrivals with seeded jitter: questions trickle in.
		at := time.Duration(float64(p.Window)*float64(i)/float64(p.Requests)) +
			time.Duration(rng.Int63n(int64(p.Window)/int64(4*p.Requests)+1))
		t.ArrivalList = append(t.ArrivalList, Arrival{
			At:           Duration(at),
			Tenant:       p.Tenants[rng.Intn(len(p.Tenants))],
			ContextID:    fmt.Sprintf("doc-%02d", rng.Intn(p.Contexts)),
			SuffixTokens: p.SuffixTokens,
			SLO:          Duration(p.SLO),
			Deadline:     Duration(p.Deadline),
			Seed:         rng.Int63(),
		})
	}
	sortArrivals(t.ArrivalList)
	return t
}

// FlashCrowd models a viral moment: every tenant hammers one hot context
// inside a tight spike at the start of the window, then a trickle of
// stragglers. The hot context's primary node is the obvious chaos
// victim.
func FlashCrowd(p Params) *Trace {
	p = p.withDefaults(Params{
		Contexts: 1, ContextTokens: 256,
		Requests: 16, Window: 700 * time.Millisecond,
		SLO: 300 * time.Millisecond,
	})
	rng := rand.New(rand.NewSource(p.Seed))
	t := &Trace{
		TraceName: "flash-crowd",
		Description: fmt.Sprintf("%d requests spiking on one %d-token context",
			p.Requests, p.ContextTokens),
		Seed: p.Seed,
	}
	t.ContextList = append(t.ContextList, ContextSpec{
		ID: "hot-ctx", Tokens: p.ContextTokens, Seed: rng.Int63(),
	})
	spike := p.Requests * 3 / 4
	for i := 0; i < p.Requests; i++ {
		var at time.Duration
		if i < spike {
			// The crowd: everyone inside the first fifth of the window.
			at = time.Duration(rng.Int63n(int64(p.Window)/5 + 1))
		} else {
			// Stragglers spread over the rest.
			at = p.Window/5 + time.Duration(rng.Int63n(int64(p.Window)*4/5+1))
		}
		t.ArrivalList = append(t.ArrivalList, Arrival{
			At:           Duration(at),
			Tenant:       p.Tenants[rng.Intn(len(p.Tenants))],
			ContextID:    "hot-ctx",
			SuffixTokens: p.SuffixTokens,
			SLO:          Duration(p.SLO),
			Deadline:     Duration(p.Deadline),
			Seed:         rng.Int63(),
		})
	}
	sortArrivals(t.ArrivalList)
	return t
}

// PoissonTenant mirrors gateway.TenantProfile for the Poisson builder,
// without importing the gateway (the gateway imports this package).
type PoissonTenant struct {
	Name         string
	Share        int
	ContextIDs   []string
	SLO          time.Duration
	Deadline     time.Duration
	SuffixTokens int
	Turns        int
	ThinkTime    time.Duration
}

// Poisson materialises the classic open-loop Poisson workload as a
// trace: exponential inter-arrival gaps at rate arrivals/second, each
// arrival drawn from the tenant mix. This subsumes the old
// gateway.Workload generator — gateway.Workload.Run now builds this
// trace and replays it — and keeps its draw order, so a given seed
// produces the same request sequence it always did. Contexts are
// assumed already published (ContextList is empty).
func Poisson(rate float64, requests int, tenants []PoissonTenant, seed int64) (*Trace, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: poisson rate %v must be positive", rate)
	}
	if requests <= 0 {
		return nil, fmt.Errorf("workload: poisson needs requests, got %d", requests)
	}
	if len(tenants) == 0 {
		return nil, errors.New("workload: poisson has no tenants")
	}
	totalShare := 0
	for _, t := range tenants {
		if t.Name == "" || len(t.ContextIDs) == 0 {
			return nil, fmt.Errorf("workload: tenant %q needs a name and contexts", t.Name)
		}
		if t.Share < 1 {
			return nil, fmt.Errorf("workload: tenant %q has share %d, want ≥ 1", t.Name, t.Share)
		}
		if t.Turns < 0 {
			return nil, fmt.Errorf("workload: tenant %q has negative turn count", t.Name)
		}
		totalShare += t.Share
	}
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{
		TraceName:   "poisson",
		Description: fmt.Sprintf("open-loop Poisson, %.0f arrivals/s, %d sessions", rate, requests),
		Seed:        seed,
	}
	mean := time.Duration(float64(time.Second) / rate)
	at := time.Duration(0)
	for i := 0; i < requests; i++ {
		if i > 0 {
			// Exponential gap, capped at 5× the mean (one unlucky draw must
			// not stall the run) — the exact stream Workload.Run drew.
			d := time.Duration(rng.ExpFloat64() * float64(mean))
			if max := 5 * mean; d > max {
				d = max
			}
			at += d
		}
		t := pickShare(rng, tenants, totalShare)
		tr.ArrivalList = append(tr.ArrivalList, Arrival{
			At:           Duration(at),
			Tenant:       t.Name,
			ContextID:    t.ContextIDs[rng.Intn(len(t.ContextIDs))],
			SuffixTokens: t.SuffixTokens,
			SLO:          Duration(t.SLO),
			Deadline:     Duration(t.Deadline),
			Turns:        t.Turns,
			ThinkTime:    Duration(t.ThinkTime),
			Seed:         rng.Int63(),
		})
	}
	return tr, nil
}

// pickShare draws a tenant proportionally to its share.
func pickShare(rng *rand.Rand, tenants []PoissonTenant, total int) PoissonTenant {
	n := rng.Intn(total)
	for _, t := range tenants {
		n -= t.Share
		if n < 0 {
			return t
		}
	}
	return tenants[len(tenants)-1]
}

// Builders maps scenario names to their builders, for CLIs that accept
// a scenario by name ("rag-burst", "agentic", "longdoc-qa",
// "flash-crowd").
func Builders() map[string]func(Params) *Trace {
	return map[string]func(Params) *Trace{
		"rag-burst":   RAGBurst,
		"agentic":     Agentic,
		"longdoc-qa":  LongDocQA,
		"flash-crowd": FlashCrowd,
	}
}

// Resolve turns a CLI trace argument into a trace: a builder name
// ("rag-burst") builds the scenario with the given params, anything
// else is read as a trace file path. Params only apply to builders — a
// trace file is already materialised data.
func Resolve(nameOrPath string, p Params) (*Trace, error) {
	if build, ok := Builders()[nameOrPath]; ok {
		return build(p), nil
	}
	t, err := Load(nameOrPath)
	if err != nil {
		names := make([]string, 0, len(Builders()))
		for name := range Builders() {
			names = append(names, name)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("workload: %q is neither a scenario (%s) nor a readable trace file: %w",
			nameOrPath, strings.Join(names, ", "), err)
	}
	return t, nil
}
