// Package workload defines replayable, seeded scenario traces for the
// serving stack: a trace names the contexts a scenario publishes and the
// per-tenant request schedule replayed against the gateway. Traces are
// plain data — JSON on disk, programmatic builders in scenarios.go — so
// the same scenario replays bit-for-bit across runs, hosts, and fault
// schedules; the chaos subsystem (internal/chaos) composes with any
// trace because faults are injected by wall-clock offset against the
// same t=0 the trace replays from.
//
// The gateway consumes traces through the Source interface
// (gateway.Replay); the old Poisson generator (gateway.Workload) is a
// builder here (Poisson) and replays through the same path.
package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/llm"
)

// Duration is a time.Duration that marshals to / from JSON as a
// human-readable string ("250ms", "1.5s"), keeping trace files legible
// and diffable.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string ("250ms"); bare numbers are
// rejected (ambiguous unit), matching netsim.ParseTrace's strictness.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("workload: duration must be a string like \"250ms\", got %s", data)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("workload: bad duration %q (need a unit, e.g. \"250ms\"): %v", s, err)
	}
	*d = Duration(v)
	return nil
}

// ContextSpec describes one context a scenario publishes before replay
// starts. Token content is fully determined by (PrefixID, PrefixTokens,
// Seed, Tokens), so a republished context is bit-for-bit identical —
// which is what lets the chaos harness compare a faulted run's KV
// against an unfaulted reference run.
type ContextSpec struct {
	// ID is the published context id.
	ID string `json:"id"`
	// Tokens is the total context length.
	Tokens int `json:"tokens"`
	// PrefixID, when set, names a shared corpus: the context's first
	// PrefixTokens tokens come from CorpusTokens(PrefixID), so every
	// context naming the same corpus shares a hot prefix (and the
	// content-addressed store dedups their chunks).
	PrefixID string `json:"prefix_id,omitempty"`
	// PrefixTokens is how much of the context the shared corpus covers.
	PrefixTokens int `json:"prefix_tokens,omitempty"`
	// Seed determines the context's unique (non-corpus) tokens.
	Seed int64 `json:"seed"`
}

// BuildTokens synthesises the context's exact token content.
func (c ContextSpec) BuildTokens() []llm.Token {
	out := make([]llm.Token, 0, c.Tokens)
	if c.PrefixID != "" && c.PrefixTokens > 0 {
		n := c.PrefixTokens
		if n > c.Tokens {
			n = c.Tokens
		}
		out = append(out, CorpusTokens(c.PrefixID, n)...)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	for len(out) < c.Tokens {
		out = append(out, llm.Token(rng.Intn(llm.VocabSize)))
	}
	return out
}

// CorpusTokens returns the first n tokens of the named shared corpus.
// The stream is a pure function of the id, so independently built
// contexts naming the same corpus share an identical prefix.
func CorpusTokens(id string, n int) []llm.Token {
	h := fnv.New64a()
	h.Write([]byte(id))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	out := make([]llm.Token, n)
	for i := range out {
		out[i] = llm.Token(rng.Intn(llm.VocabSize))
	}
	return out
}

// TurnTokens synthesises one session turn's token content (the user
// prompt plus tool output an agentic turn appends). Turn numbering is
// 1-based; the stream is a pure function of (seed, turn), so replayed
// sessions append identical histories regardless of scheduling order.
func TurnTokens(seed int64, turn, n int) []llm.Token {
	const mix = -0x61c8864680b583eb // 0x9e3779b97f4a7c15 as signed int64
	rng := rand.New(rand.NewSource(seed ^ int64(turn)*mix))
	out := make([]llm.Token, n)
	for i := range out {
		out[i] = llm.Token(rng.Intn(llm.VocabSize))
	}
	return out
}

// Arrival is one scheduled session arrival: at offset At from replay
// start, the tenant submits a session of Turns turns against ContextID.
// With AppendTokens > 0 the session is agentic — each turn appends
// TurnTokens(Seed, turn, AppendTokens) through gateway.Session, growing
// the published context — otherwise turns re-fetch the same context with
// the previous turn's KV resident (a chat re-reading its history).
type Arrival struct {
	// At is the arrival's offset from replay start.
	At Duration `json:"at"`
	// Tenant is the submitting tenant.
	Tenant string `json:"tenant"`
	// ContextID is the context requested (for agentic arrivals, the
	// context the session creates on its first turn).
	ContextID string `json:"context_id"`
	// SuffixTokens is the per-turn prompt-suffix length (0 = gateway
	// default).
	SuffixTokens int `json:"suffix_tokens,omitempty"`
	// SLO is the per-turn TTFT objective (0 = none).
	SLO Duration `json:"slo,omitempty"`
	// Deadline hard-abandons a turn that long after admission (0 = none).
	Deadline Duration `json:"deadline,omitempty"`
	// Turns is the session length (0 or 1 = single-shot).
	Turns int `json:"turns,omitempty"`
	// ThinkTime is the mean think time between turns (exponential, drawn
	// from Seed; capped at 5× the mean).
	ThinkTime Duration `json:"think_time,omitempty"`
	// AppendTokens, when > 0, makes each turn append that many tokens via
	// gateway.Session (agentic tool output).
	AppendTokens int `json:"append_tokens,omitempty"`
	// Seed drives the session's private randomness: think-time draws and
	// agentic turn content.
	Seed int64 `json:"seed"`
}

// Trace is a complete replayable scenario: the contexts to publish and
// the arrival schedule. It implements Source.
type Trace struct {
	// TraceName labels the scenario in reports (JSON key "name").
	TraceName string `json:"name"`
	// Description says what serving situation the scenario models.
	Description string `json:"description,omitempty"`
	// Seed is the master seed the trace was built from (informational
	// after building — all randomness is already materialised in the
	// arrivals and specs).
	Seed int64 `json:"seed"`
	// ContextList names the contexts replay publishes before t=0.
	// Agentic contexts are absent: their sessions create them.
	ContextList []ContextSpec `json:"contexts,omitempty"`
	// ArrivalList is the schedule, sorted by At.
	ArrivalList []Arrival `json:"arrivals"`
}

// Source is the request schedule the gateway replays
// (gateway.Replay): everything is finite, materialised data, so a
// source replays identically every time.
type Source interface {
	// Name labels the scenario.
	Name() string
	// Contexts lists the contexts to publish before replay.
	Contexts() []ContextSpec
	// Arrivals returns the schedule, sorted by At.
	Arrivals() []Arrival
}

// Name implements Source.
func (t *Trace) Name() string { return t.TraceName }

// Contexts implements Source.
func (t *Trace) Contexts() []ContextSpec { return t.ContextList }

// Arrivals implements Source.
func (t *Trace) Arrivals() []Arrival { return t.ArrivalList }

// Validate checks the trace is replayable: sorted arrivals, named
// tenants and contexts, sane counts. Builders always produce valid
// traces; Load validates files.
func (t *Trace) Validate() error {
	if t.TraceName == "" {
		return errors.New("workload: trace has no name")
	}
	if len(t.ArrivalList) == 0 {
		return fmt.Errorf("workload: trace %q has no arrivals", t.TraceName)
	}
	seen := map[string]bool{}
	for i, c := range t.ContextList {
		if c.ID == "" {
			return fmt.Errorf("workload: trace %q: context %d has no id", t.TraceName, i)
		}
		if seen[c.ID] {
			return fmt.Errorf("workload: trace %q: duplicate context %q", t.TraceName, c.ID)
		}
		seen[c.ID] = true
		if c.Tokens <= 0 {
			return fmt.Errorf("workload: trace %q: context %q has %d tokens", t.TraceName, c.ID, c.Tokens)
		}
		if c.PrefixTokens < 0 || c.PrefixTokens > c.Tokens {
			return fmt.Errorf("workload: trace %q: context %q prefix %d outside [0, %d]",
				t.TraceName, c.ID, c.PrefixTokens, c.Tokens)
		}
	}
	last := Duration(-1)
	for i, a := range t.ArrivalList {
		if a.Tenant == "" || a.ContextID == "" {
			return fmt.Errorf("workload: trace %q: arrival %d needs a tenant and a context id", t.TraceName, i)
		}
		if a.At < 0 {
			return fmt.Errorf("workload: trace %q: arrival %d at negative offset %v", t.TraceName, i, a.At.D())
		}
		if a.At < last {
			return fmt.Errorf("workload: trace %q: arrivals not sorted by offset (index %d)", t.TraceName, i)
		}
		last = a.At
		if a.Turns < 0 {
			return fmt.Errorf("workload: trace %q: arrival %d has negative turn count", t.TraceName, i)
		}
		if a.AppendTokens < 0 {
			return fmt.Errorf("workload: trace %q: arrival %d has negative append tokens", t.TraceName, i)
		}
		if a.AppendTokens > 0 && !seen[a.ContextID] {
			continue // agentic sessions create their own context
		}
		if len(t.ContextList) > 0 && !seen[a.ContextID] {
			return fmt.Errorf("workload: trace %q: arrival %d requests unpublished context %q",
				t.TraceName, i, a.ContextID)
		}
	}
	return nil
}

// sortArrivals orders the schedule by offset, stably, so builders can
// emit per-tenant streams and merge them.
func sortArrivals(as []Arrival) {
	sort.SliceStable(as, func(i, j int) bool { return as[i].At < as[j].At })
}

// Parse decodes and validates a trace from JSON.
func Parse(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("workload: parsing trace: %w", err)
	}
	sortArrivals(t.ArrivalList)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Load reads and validates a trace file.
func Load(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	t, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("workload: trace file %s: %w", path, err)
	}
	return t, nil
}

// Save writes the trace as indented JSON.
func (t *Trace) Save(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Duration returns the schedule length (the last arrival's offset).
func (t *Trace) Duration() time.Duration {
	if len(t.ArrivalList) == 0 {
		return 0
	}
	return t.ArrivalList[len(t.ArrivalList)-1].At.D()
}
