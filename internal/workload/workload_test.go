package workload

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestBuildersValidAndDeterministic: every named builder produces a
// valid trace, and the same seed reproduces it field-for-field.
func TestBuildersValidAndDeterministic(t *testing.T) {
	for name, build := range Builders() {
		t.Run(name, func(t *testing.T) {
			a := build(Params{Seed: 42})
			if err := a.Validate(); err != nil {
				t.Fatalf("builder produced invalid trace: %v", err)
			}
			if a.TraceName != name {
				t.Fatalf("trace name %q, want %q", a.TraceName, name)
			}
			b := build(Params{Seed: 42})
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed produced different traces")
			}
			c := build(Params{Seed: 43})
			if reflect.DeepEqual(a, c) {
				t.Fatal("different seeds produced identical traces")
			}
		})
	}
}

// TestRAGBurstSharedPrefix: every context in the burst shares the corpus
// prefix bit-for-bit, while tails differ.
func TestRAGBurstSharedPrefix(t *testing.T) {
	tr := RAGBurst(Params{Seed: 1})
	if len(tr.ContextList) < 2 {
		t.Fatalf("want ≥ 2 contexts, got %d", len(tr.ContextList))
	}
	first := tr.ContextList[0]
	want := CorpusTokens(first.PrefixID, first.PrefixTokens)
	for _, c := range tr.ContextList {
		toks := c.BuildTokens()
		if len(toks) != c.Tokens {
			t.Fatalf("context %s: built %d tokens, want %d", c.ID, len(toks), c.Tokens)
		}
		if !reflect.DeepEqual(toks[:c.PrefixTokens], want) {
			t.Fatalf("context %s does not share the corpus prefix", c.ID)
		}
	}
	a := tr.ContextList[0].BuildTokens()
	b := tr.ContextList[1].BuildTokens()
	if reflect.DeepEqual(a, b) {
		t.Fatal("distinct contexts built identical token streams")
	}
}

// TestAgenticArrivals: agentic arrivals carry turns, think time and
// append sizes, and reference contexts the sessions create themselves.
func TestAgenticArrivals(t *testing.T) {
	tr := Agentic(Params{Seed: 9})
	if len(tr.ContextList) != 0 {
		t.Fatalf("agentic trace pre-publishes %d contexts, want 0", len(tr.ContextList))
	}
	for i, a := range tr.ArrivalList {
		if a.Turns < 2 {
			t.Fatalf("arrival %d has %d turns, want ≥ 2", i, a.Turns)
		}
		if a.AppendTokens <= 0 {
			t.Fatalf("arrival %d has no append tokens", i)
		}
	}
	// Turn content is a pure function of (seed, turn).
	x := TurnTokens(7, 2, 32)
	y := TurnTokens(7, 2, 32)
	if !reflect.DeepEqual(x, y) {
		t.Fatal("TurnTokens not deterministic")
	}
	if reflect.DeepEqual(x, TurnTokens(7, 3, 32)) {
		t.Fatal("different turns produced identical content")
	}
}

// TestFlashCrowdShape: all arrivals hit the single hot context and the
// spike lands early.
func TestFlashCrowdShape(t *testing.T) {
	tr := FlashCrowd(Params{Seed: 3, Requests: 16, Window: 700 * time.Millisecond})
	if len(tr.ContextList) != 1 {
		t.Fatalf("flash crowd has %d contexts, want 1", len(tr.ContextList))
	}
	early := 0
	for _, a := range tr.ArrivalList {
		if a.ContextID != tr.ContextList[0].ID {
			t.Fatalf("arrival targets %q, want the hot context", a.ContextID)
		}
		if a.At.D() <= 140*time.Millisecond {
			early++
		}
	}
	if early < len(tr.ArrivalList)/2 {
		t.Fatalf("only %d/%d arrivals in the spike window", early, len(tr.ArrivalList))
	}
}

// TestJSONRoundTrip: Save → Load reproduces the trace exactly, including
// the human-readable duration encoding.
func TestJSONRoundTrip(t *testing.T) {
	orig := LongDocQA(Params{Seed: 5})
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("trace changed across Save/Load round trip")
	}
}

// TestParseRejectsBadTraces: malformed traces come back with descriptive
// errors, not degenerate schedules.
func TestParseRejectsBadTraces(t *testing.T) {
	cases := []struct {
		name, json, want string
	}{
		{"no name", `{"arrivals":[{"at":"0s","tenant":"a","context_id":"c"}]}`, "no name"},
		{"no arrivals", `{"name":"x"}`, "no arrivals"},
		{"bare number duration", `{"name":"x","arrivals":[{"at":5,"tenant":"a","context_id":"c"}]}`, "duration"},
		{"unitless duration", `{"name":"x","arrivals":[{"at":"5","tenant":"a","context_id":"c"}]}`, "duration"},
		{"negative offset", `{"name":"x","arrivals":[{"at":"-1s","tenant":"a","context_id":"c"}]}`, "negative offset"},
		{"missing tenant", `{"name":"x","arrivals":[{"at":"0s","context_id":"c"}]}`, "tenant"},
		{"duplicate context", `{"name":"x","contexts":[{"id":"c","tokens":8},{"id":"c","tokens":8}],"arrivals":[{"at":"0s","tenant":"a","context_id":"c"}]}`, "duplicate"},
		{"zero-token context", `{"name":"x","contexts":[{"id":"c","tokens":0}],"arrivals":[{"at":"0s","tenant":"a","context_id":"c"}]}`, "tokens"},
		{"prefix exceeds tokens", `{"name":"x","contexts":[{"id":"c","tokens":8,"prefix_id":"p","prefix_tokens":9}],"arrivals":[{"at":"0s","tenant":"a","context_id":"c"}]}`, "prefix"},
		{"unpublished context", `{"name":"x","contexts":[{"id":"c","tokens":8}],"arrivals":[{"at":"0s","tenant":"a","context_id":"other"}]}`, "unpublished"},
		{"negative turns", `{"name":"x","arrivals":[{"at":"0s","tenant":"a","context_id":"c","turns":-1}]}`, "turn count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatal("malformed trace accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseSortsArrivals: a valid but unsorted file is sorted on load
// rather than rejected (hand-written traces need not be pre-sorted).
func TestParseSortsArrivals(t *testing.T) {
	tr, err := Parse([]byte(`{"name":"x","arrivals":[
		{"at":"20ms","tenant":"a","context_id":"c"},
		{"at":"5ms","tenant":"b","context_id":"c"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if tr.ArrivalList[0].At.D() != 5*time.Millisecond {
		t.Fatal("arrivals not sorted on parse")
	}
	if tr.Duration() != 20*time.Millisecond {
		t.Fatalf("Duration = %v, want 20ms", tr.Duration())
	}
}

// TestPoissonBuilder: validation errors propagate, shares are respected
// in aggregate, and the schedule is sorted and seeded.
func TestPoissonBuilder(t *testing.T) {
	if _, err := Poisson(0, 10, []PoissonTenant{{Name: "a", Share: 1, ContextIDs: []string{"c"}}}, 1); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := Poisson(100, 10, nil, 1); err == nil {
		t.Fatal("no tenants accepted")
	}
	tenants := []PoissonTenant{
		{Name: "heavy", Share: 3, ContextIDs: []string{"c1", "c2"}, SLO: 100 * time.Millisecond},
		{Name: "light", Share: 1, ContextIDs: []string{"c3"}},
	}
	tr, err := Poisson(200, 400, tenants, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, a := range tr.ArrivalList {
		counts[a.Tenant]++
	}
	if counts["heavy"] <= counts["light"] {
		t.Fatalf("share-3 tenant drew %d arrivals vs share-1's %d", counts["heavy"], counts["light"])
	}
	again, err := Poisson(200, 400, tenants, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, again) {
		t.Fatal("same seed produced different poisson traces")
	}
}

// TestResolve: a builder name builds with the params, any other string
// is a trace file path, and junk reports both interpretations.
func TestResolve(t *testing.T) {
	byName, err := Resolve("rag-burst", Params{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byName, RAGBurst(Params{Seed: 9})) {
		t.Fatal("Resolve(\"rag-burst\") differs from RAGBurst")
	}

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := Agentic(Params{Seed: 3}).Save(path); err != nil {
		t.Fatal(err)
	}
	byPath, err := Resolve(path, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if byPath.TraceName != "agentic" {
		t.Fatalf("Resolve(%s) loaded trace %q", path, byPath.TraceName)
	}

	_, err = Resolve("no-such-scenario", Params{})
	if err == nil {
		t.Fatal("junk trace argument accepted")
	}
	for _, want := range []string{"rag-burst", "flash-crowd", "no-such-scenario"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("Resolve error %q does not mention %q", err, want)
		}
	}
}
