package cachegen

import (
	"repro/internal/netsim"
	"repro/internal/streamer"
)

// Virtual-time simulation surface: everything needed to evaluate loading
// delays and adaptation policies without a testbed — the same machinery
// the experiment harness uses to regenerate the paper's figures.

type (
	// Trace is a bandwidth profile over time.
	Trace = netsim.Trace
	// Link is a virtual-time network link driven by a Trace.
	Link = netsim.Link
	// ChunkInfo is the planner's per-chunk metadata.
	ChunkInfo = streamer.ChunkInfo
	// SimInput describes one simulated context-loading request.
	SimInput = streamer.SimInput
	// SimResult is the outcome of a simulated request.
	SimResult = streamer.SimResult
	// ChunkDecision records one chunk's configuration and timing.
	ChunkDecision = streamer.ChunkDecision
)

// Gbps converts gigabits per second to bits per second.
func Gbps(g float64) float64 { return netsim.Gbps(g) }

// ConstantTrace returns a fixed-bandwidth trace (bits per second).
func ConstantTrace(bps float64) Trace { return netsim.Constant(bps) }

// StepTrace returns a piecewise-constant trace.
var StepTrace = netsim.NewStep

// RandomTrace returns a trace re-sampled uniformly per interval.
var RandomTrace = netsim.NewRandom

// Figure7Trace returns the paper's adaptation-walkthrough trace
// (2 Gbps → 0.2 Gbps at t=2s → 1 Gbps at t=4s).
func Figure7Trace() Trace { return netsim.Figure7Trace() }

// NewLink returns a virtual-time link at time zero.
func NewLink(trace Trace) *Link { return netsim.NewLink(trace) }

// Simulate runs one context-loading request in virtual time.
func Simulate(in SimInput) (*SimResult, error) { return streamer.Simulate(in) }

type (
	// BatchRequest is one request in a batched stream (§5.3).
	BatchRequest = streamer.BatchRequest
	// BatchInput describes a batched streaming round.
	BatchInput = streamer.BatchInput
	// IncrementalFetch is the two-phase result of Fetcher.FetchIncremental
	// (SVC-style streaming: usable base now, quality upgrade later).
	IncrementalFetch = streamer.IncrementalFetch
)

// SimulateBatch streams multiple requests over one shared link in virtual
// time, with per-chunk-index batching (§5.3).
func SimulateBatch(in BatchInput) ([]*SimResult, error) { return streamer.SimulateBatch(in) }

// BuildChunkInfos derives planner chunk metadata from stored context
// metadata plus the compute cost model.
var BuildChunkInfos = streamer.BuildChunkInfos
